(* Command-line front end for the Turnpike reproduction.

   turnpike-cli list                          benchmark inventory
   turnpike-cli run -b mcf -s turnpike -w 30  compile + simulate one benchmark
   turnpike-cli trace -b mcf --timeline t.json  cycle-level Perfetto timeline
   turnpike-cli inject -b lbm -n 50           fault-injection campaign
   turnpike-cli report -b mcf --mutant drop-ckpt  forensic vulnerability ranking
   turnpike-cli lint -b mcf --per-pass        static resilience soundness check
   turnpike-cli compile k.tk --pipeline SPEC  compile a user .tk kernel
   turnpike-cli recovery -b libquan           dump generated recovery blocks
   turnpike-cli cost                          hardware cost table
   turnpike-cli wcdl -n 300 -f 2.5            sensor model query
   turnpike-cli explore --grid tiny           design-space Pareto frontier *)

open Cmdliner
module Suite = Turnpike_workloads.Suite
module Sim_stats = Turnpike_arch.Sim_stats
module Telemetry = Turnpike_telemetry

(* Real wall clock for compile-pass profiling spans; the telemetry library
   itself stays dependency-free with a Sys.time default. The deterministic
   [trace] exports never read this clock. *)
let () = Telemetry.Clock.set Unix.gettimeofday

let schemes =
  List.map (fun (s : Turnpike.Scheme.t) -> (s.Turnpike.Scheme.name, s))
    (Turnpike.Scheme.baseline :: Turnpike.Scheme.ladder)

(* ------------------------------------------------------------------ *)

let list_cmd =
  let doc = "List the 36 benchmark proxies and the available schemes." in
  let run () =
    print_endline "benchmarks:";
    List.iter
      (fun b ->
        Printf.printf "  %-18s %-14s %s\n" (Suite.qualified_name b)
          (Suite.suite_name b.Suite.suite) b.Suite.description)
      (Suite.all ());
    print_endline "\nschemes:";
    List.iter (fun (n, _) -> Printf.printf "  %s\n" n) schemes
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* ------------------------------------------------------------------ *)

let bench_arg =
  let doc =
    "Benchmark name (e.g. mcf, lbm); suite-qualified names like mcf@2017 \
     also work, as does a path to a .tk kernel file (see docs/LANGUAGE.md)."
  in
  Arg.(required & opt (some string) None & info [ "b"; "benchmark" ] ~doc ~docv:"NAME")

let scheme_arg =
  let parse s =
    match List.assoc_opt s schemes with
    | Some x -> Ok x
    | None ->
      Error (`Msg (Printf.sprintf "unknown scheme %s (see `turnpike-cli list`)" s))
  in
  let print fmt (s : Turnpike.Scheme.t) = Format.pp_print_string fmt s.Turnpike.Scheme.name in
  let scheme_conv = Arg.conv (parse, print) in
  Arg.(value & opt scheme_conv Turnpike.Scheme.turnpike
       & info [ "s"; "scheme" ] ~docv:"SCHEME"
           ~doc:"Resilience scheme (default turnpike).")

let wcdl_arg =
  Arg.(value & opt int 10 & info [ "w"; "wcdl" ] ~docv:"CYCLES"
         ~doc:"Worst-case detection latency in cycles.")

let sb_arg =
  Arg.(value & opt int 4 & info [ "sb" ] ~docv:"ENTRIES" ~doc:"Store-buffer entries.")

let scale_arg =
  Arg.(value & opt int Turnpike.Run.default_scale & info [ "scale" ] ~docv:"N"
         ~doc:"Workload scale factor (iteration multiplier).")

(* Shared campaign flags: names, defaults and doc strings come from the
   one arg spec in Turnpike.Campaign_args (also used by bench). *)
module CA = Turnpike.Campaign_args

(* Worker domains for experiment grids (see Turnpike.Parallel). 0 = auto
   (CPU count); 1 preserves strictly sequential execution. The term is
   evaluated for its side effect before the command body runs. *)
let jobs_arg =
  let set n = Turnpike.Parallel.set_default_jobs n in
  Term.(
    const set
    $ Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"N" ~doc:CA.doc_jobs))

let seed_arg =
  Arg.(value & opt int CA.default.CA.seed
       & info [ "seed" ] ~docv:"SEED" ~doc:CA.doc_seed)

let ci_arg =
  Arg.(value & opt (some float) CA.default.CA.ci
       & info [ "ci" ] ~docv:"WIDTH" ~doc:CA.doc_ci)

let confidence_arg =
  Arg.(value & opt float CA.default.CA.confidence
       & info [ "confidence" ] ~docv:"C" ~doc:CA.doc_confidence)

let batch_arg =
  Arg.(value & opt int CA.default.CA.batch
       & info [ "batch" ] ~docv:"B" ~doc:CA.doc_batch)

(* A workload is either a built-in proxy (by plain or suite-qualified
   name) or a user kernel: any argument ending in .tk is loaded through
   the frontend and wrapped as a Suite entry, so every subcommand works
   on user workloads unchanged. *)
let find_bench name =
  if Turnpike_frontend.Tk.is_tk_file name then
    Turnpike_frontend.Tk.entry_of_file name
  else
    let qualified = List.find_opt (fun b -> Suite.qualified_name b = name) (Suite.all ()) in
    match qualified with
    | Some b -> Ok b
    | None -> (
      match Suite.find_by_name name with
      | b :: _ -> Ok b
      | [] -> Error (Printf.sprintf "unknown benchmark %s" name))

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON counters.")

let run_cmd =
  let doc = "Compile one benchmark under a scheme and simulate it." in
  let run () name scheme wcdl sb scale json =
    match find_bench name with
    | Error e ->
      prerr_endline e;
      exit 1
    | Ok b ->
      let ov, r =
        Turnpike.Run.normalized_with
          { Turnpike.Run.default_params with scale; wcdl; sb_size = sb }
          scheme b
      in
      if json then
        Printf.printf
          "{\"benchmark\":\"%s\",\"scheme\":\"%s\",\"wcdl\":%d,\"sb\":%d,\"overhead\":%.4f,\"stats\":%s,\"static_stats\":%s}\n"
          (Suite.qualified_name b) r.Turnpike.Run.scheme wcdl sb ov
          (Sim_stats.to_json r.Turnpike.Run.stats)
          (Turnpike_compiler.Static_stats.to_json r.Turnpike.Run.static_stats)
      else begin
        Printf.printf "%s under %s (WCDL=%d, SB=%d):\n" (Suite.qualified_name b)
          r.Turnpike.Run.scheme wcdl sb;
        Printf.printf "  normalized execution time: %.3fx\n" ov;
        Printf.printf "  %s\n" (Sim_stats.to_string r.Turnpike.Run.stats);
        Printf.printf "  static: %s\n"
          (Turnpike_compiler.Static_stats.to_string r.Turnpike.Run.static_stats)
      end
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ jobs_arg $ bench_arg $ scheme_arg $ wcdl_arg $ sb_arg
      $ scale_arg $ json_arg)

(* ------------------------------------------------------------------ *)

let trace_cmd =
  let doc =
    "Capture a cycle-level timeline of one benchmark across the full \
     ablation ladder and export it as Chrome trace-event JSON (loadable in \
     Perfetto / chrome://tracing) or JSONL. Events carry simulated cycles, \
     so the export is byte-identical at any --jobs count."
  in
  let timeline_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "timeline" ] ~docv:"FILE"
          ~doc:
            "Write the Chrome trace-event timeline to $(docv) ('-' for \
             stdout). One process per ladder rung; tracks: regions, stalls, \
             verify windows, store-buffer events, CLQ events.")
  in
  let jsonl_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "jsonl" ] ~docv:"FILE"
          ~doc:"Also write the merged events as self-describing JSONL.")
  in
  let run () name wcdl sb scale timeline jsonl =
    match find_bench name with
    | Error e ->
      prerr_endline e;
      exit 1
    | Ok b ->
      let params =
        { Turnpike.Run.default_params with scale; wcdl; sb_size = sb }
      in
      let t = Turnpike.Timeline.capture ~params b in
      let write dest contents =
        match dest with
        | "-" -> print_string contents
        | path -> Telemetry.Export.to_file path contents
      in
      (match timeline with
      | Some dest -> write dest (Turnpike.Timeline.chrome t)
      | None -> ());
      (match jsonl with
      | Some dest -> write dest (Turnpike.Timeline.jsonl t)
      | None -> ());
      Printf.printf "%s: %d events across %d schemes (wcdl=%d sb=%d)\n"
        t.Turnpike.Timeline.benchmark
        (List.length t.Turnpike.Timeline.events)
        (List.length t.Turnpike.Timeline.schemes)
        wcdl sb;
      List.iter2
        (fun s n -> Printf.printf "  %-24s %6d events\n" s n)
        t.Turnpike.Timeline.schemes t.Turnpike.Timeline.per_task;
      Printf.printf "  sensor config: %s\n" (Turnpike.Timeline.sensor_metadata t)
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      const run $ jobs_arg $ bench_arg $ wcdl_arg $ sb_arg $ scale_arg
      $ timeline_arg $ jsonl_arg)

(* ------------------------------------------------------------------ *)

let inject_cmd =
  let doc =
    "Run a fault-injection campaign and verify SDC-freedom. Faults fan out \
     over the --jobs worker domains (one interpreter replay each); the \
     report is identical at any job count for a fixed --seed. By default \
     each fault forks from the snapshot of a fault-free pilot run nearest \
     its strike site (byte-identical to a from-scratch replay, at \
     O(suffix) cost); --scratch disables the snapshots. With --ci the \
     fixed fault count is replaced by sequential stopping: batches are \
     injected until the Wilson confidence interval on the SDC rate is \
     narrower than +/- WIDTH. --forensics records every fault's lifecycle \
     trace; --jsonl/--trace/--csv/--json export it (each implies \
     --forensics)."
  in
  let faults_arg =
    Arg.(value & opt int 30 & info [ "n"; "faults" ] ~docv:"N" ~doc:CA.doc_faults)
  in
  let scratch_arg =
    Arg.(
      value & flag
      & info [ "scratch" ]
          ~doc:"Replay every fault from step 0 instead of forking from \
                pilot snapshots (same report, slower).")
  in
  let every_arg =
    Arg.(
      value & opt int 0
      & info [ "snapshot-every" ] ~docv:"K"
          ~doc:"Pilot snapshot cadence in steps (0 = default cadence).")
  in
  let forensics_arg =
    Arg.(value & flag & info [ "forensics" ] ~doc:CA.doc_forensics)
  in
  let fjsonl_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "jsonl" ] ~docv:"FILE"
          ~doc:
            "Write the forensic lifecycle events (plus the Wilson \
             trajectory under --ci) as self-describing JSONL to $(docv) \
             ('-' for stdout). Implies --forensics.")
  in
  let ftrace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write the forensic lifecycle as Chrome trace-event JSON \
             (one process per fault, loadable in Perfetto) to $(docv) \
             ('-' for stdout). Implies --forensics.")
  in
  let fcsv_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"DIR"
          ~doc:
            "Write forensics_faults.csv and the by-site / by-register / \
             by-region attribution tables under $(docv). Implies \
             --forensics.")
  in
  let fjson_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit one machine-readable JSON report (summary plus per-fault \
             records with the fault draw and verdict) instead of text. \
             Implies --forensics.")
  in
  let run () name faults seed scale scratch every ci confidence batch forensics
      fjsonl ftrace fcsv json =
    match find_bench name with
    | Error e ->
      prerr_endline e;
      exit 1
    | Ok b ->
      let forensics =
        forensics || fjsonl <> None || ftrace <> None || fcsv <> None || json
      in
      let c =
        Turnpike.Run.compile_with
          { Turnpike.Run.default_params with scale }
          Turnpike.Scheme.turnpike b
      in
      if not c.Turnpike.Run.trace.Turnpike_ir.Trace.complete then begin
        prerr_endline "trace truncated; lower --scale";
        exit 1
      end;
      let module V = Turnpike_resilience.Verifier in
      let module F = Turnpike_resilience.Forensics in
      let module Snapshot = Turnpike_resilience.Snapshot in
      let plan =
        if scratch then None
        else
          Some
            (Snapshot.record
               ?every:(if every > 0 then Some every else None)
               c.Turnpike.Run.compiled)
      in
      let campaign =
        Turnpike_resilience.Injector.campaign ~seed ~count:faults c.Turnpike.Run.trace
      in
      let golden = c.Turnpike.Run.final in
      let compiled = c.Turnpike.Run.compiled in
      let print_report (rep : V.campaign_report) =
        if not json then
          Printf.printf
            "%s: %d faults -> %d recovered, %d SDC, %d crashed (parity %d, sensor %d)\n"
            (Suite.qualified_name b) rep.V.total rep.V.recovered rep.V.sdc
            rep.V.crashed rep.V.parity_detections rep.V.sensor_detections;
        rep.V.sdc > 0 || rep.V.crashed > 0
      in
      let print_ci (r : V.ci_report) =
        if not json then
          Printf.printf
            "  SDC rate %.4f in [%.4f, %.4f] at %g%% confidence (+/- %.4f, \
             %d batches%s)\n"
            r.V.sdc_rate r.V.ci_low r.V.ci_high (100.0 *. confidence)
            r.V.achieved_half_width r.V.batches
            (if r.V.exhausted then "; fault supply exhausted" else "")
      in
      let ca = { CA.default with CA.seed; ci; confidence; batch } in
      let failed =
        if not forensics then
          match CA.stopping ca with
          | None ->
            print_report (V.run_campaign ?plan ~golden ~compiled campaign)
          | Some stopping ->
            let r =
              V.run_campaign_ci ?plan ~stopping ~golden ~compiled campaign
            in
            let failed = print_report r.V.report in
            print_ci r;
            failed
        else begin
          (* The Wilson-trajectory sink sorts after every per-fault sink
             (task = fault supply size), so the merged export order is a
             total, jobs-independent order. *)
          let traj = Telemetry.create ~task:(List.length campaign) () in
          let records, failed =
            match CA.stopping ca with
            | None ->
              let records, rep = F.campaign ?plan ~golden ~compiled campaign in
              (records, print_report rep)
            | Some stopping ->
              let records, r =
                F.campaign_ci ?plan ~stopping ~tel:traj ~golden ~compiled
                  campaign
              in
              let failed = print_report r.V.report in
              print_ci r;
              (records, failed)
          in
          let summary = F.summarize ~rung:"turnpike" records in
          let dropped = F.total_dropped records + Telemetry.dropped traj in
          if json then
            Printf.printf "{\"benchmark\":\"%s\",\"summary\":%s,\"faults\":[%s]}\n"
              (Suite.qualified_name b)
              (F.summary_to_json summary)
              (String.concat "," (List.map F.record_to_json records))
          else begin
            let cls = summary.F.by_class in
            Printf.printf
              "  forensics: %d/%d landed; masked %d, detected %d, sdc %d, \
               crashed %d\n"
              summary.F.landed summary.F.total cls.F.masked cls.F.detected
              cls.F.sdc cls.F.crashed;
            Printf.printf
              "  mean detect latency %.1f, mean rewind %.1f, dropped events %d\n"
              summary.F.mean_detect_latency summary.F.mean_rewind dropped
          end;
          let write dest contents =
            match dest with
            | "-" -> print_string contents
            | path -> Telemetry.Export.to_file path contents
          in
          let events = F.merged_events records @ Telemetry.events traj in
          Option.iter
            (fun dest -> write dest (Telemetry.Export.jsonl ~dropped events))
            fjsonl;
          Option.iter
            (fun dest -> write dest (Telemetry.Export.chrome ~dropped events))
            ftrace;
          Option.iter
            (fun dir ->
              (try Unix.mkdir dir 0o755 with _ -> ());
              Turnpike.Csv_export.forensics ~dir records summary;
              if not json then Printf.printf "[forensic csv written under %s]\n" dir)
            fcsv;
          failed
        end
      in
      if failed then exit 1
  in
  Cmd.v (Cmd.info "inject" ~doc)
    Term.(
      const run $ jobs_arg $ bench_arg $ faults_arg $ seed_arg $ scale_arg
      $ scratch_arg $ every_arg $ ci_arg $ confidence_arg $ batch_arg
      $ forensics_arg $ fjsonl_arg $ ftrace_arg $ fcsv_arg $ fjson_arg)

(* ------------------------------------------------------------------ *)

let report_cmd =
  let module F = Turnpike_resilience.Forensics in
  let module R = Turnpike.Report in
  let module PP = Turnpike_compiler.Pass_pipeline in
  let doc =
    "Forensic vulnerability report over a fault campaign: run every fault \
     with a lifecycle trace, then rank static instruction sites, struck \
     registers and static regions by AVF-derated vulnerability (SDCs and \
     crashes over exposure). --mutant drop-ckpt first plants a known \
     compiler bug (delete every checkpoint of one recoverable live-in) so \
     the ranking can be checked against ground truth: the victim register \
     tops the table. Output is byte-identical at any --jobs count."
  in
  let faults_arg =
    Arg.(value & opt int 60 & info [ "n"; "faults" ] ~docv:"N" ~doc:CA.doc_faults)
  in
  let top_arg =
    Arg.(
      value & opt int 8
      & info [ "top" ] ~docv:"N" ~doc:"Rows per attribution table.")
  in
  let mutant_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "mutant" ] ~docv:"KIND"
          ~doc:
            "Plant a compiler bug before the campaign; the only $(docv) is \
             $(b,drop-ckpt) (delete every checkpoint of one recoverable \
             live-in register and wipe the claims).")
  in
  let csv_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"DIR"
          ~doc:"Write the per-fault log and attribution tables under $(docv).")
  in
  let compare_static_arg =
    Arg.(
      value & flag
      & info [ "compare-static" ]
          ~doc:
            "Also run the static ACE/AVF vulnerability analysis on the same \
             binary (the mutant, when one is planted) and score how well its \
             ranked tables predict the campaign's: Spearman rank correlation \
             and top-K overlap per axis. No extra faults are injected.")
  in
  let run () name scheme scale faults seed top mutant csv_dir compare_static
      json =
    match find_bench name with
    | Error e ->
      prerr_endline e;
      exit 1
    | Ok b ->
      (* Compile outside the Run cache: the mutant rewrites block bodies in
         place, which must never leak into other commands' cached entries. *)
      let prog = b.Suite.build ~scale in
      let compiled =
        PP.compile ~opts:(Turnpike.Scheme.compile_opts scheme ~sb_size:4) prog
      in
      let rung = scheme.Turnpike.Scheme.name in
      let compiled, rung, victim =
        match mutant with
        | None -> (compiled, rung, None)
        | Some "drop-ckpt" -> (
          match F.drop_checkpoint_mutant compiled with
          | None ->
            prerr_endline "no region has a checkpointed recoverable live-in";
            exit 1
          | Some (m, v, affected) -> (m, rung ^ "+drop-ckpt", Some (v, affected)))
        | Some other ->
          prerr_endline (Printf.sprintf "unknown mutant %s (try drop-ckpt)" other);
          exit 1
      in
      let module Interp = Turnpike_ir.Interp in
      let trace, golden =
        Interp.trace_run ~fuel:Turnpike.Run.default_fuel compiled.PP.prog
      in
      if not trace.Turnpike_ir.Trace.complete then begin
        prerr_endline "trace truncated; lower --scale";
        exit 1
      end;
      let campaign =
        Turnpike_resilience.Injector.campaign ~seed ~count:faults trace
      in
      let records, _rep = F.campaign ~golden ~compiled campaign in
      let summary = F.summarize ~rung records in
      (* The static estimate reads the same (possibly mutated) binary: the
         mutant wiped the claims and dropped the checkpoints in place, so
         the analysis sees exactly what the campaign executed. *)
      let module An = Turnpike_analysis in
      let static_v =
        if not compare_static then None
        else
          Some
            (An.Vuln.compute
               (An.Context.with_machine ~wcdl:10 (PP.analysis_context compiled)))
      in
      let keys_of rows = List.map (fun (r : F.row) -> r.F.key) rows in
      let skeys_of rows = List.map (fun (r : An.Vuln.row) -> r.An.Vuln.key) rows in
      let agreements (v : An.Vuln.t) =
        [
          ( "sites", An.Rank.agreement ~k:top (skeys_of v.An.Vuln.by_site)
              (keys_of summary.F.by_site) );
          ( "registers", An.Rank.agreement ~k:top
              (skeys_of v.An.Vuln.by_register)
              (keys_of summary.F.by_register) );
          ( "regions", An.Rank.agreement ~k:5 (skeys_of v.An.Vuln.by_region)
              (keys_of summary.F.by_region) );
        ]
      in
      if json then begin
        match static_v with
        | None -> print_string (F.summary_to_json summary)
        | Some v ->
          Printf.printf "{\"dynamic\":%s,\"static\":%s,\"agreement\":{%s}}"
            (F.summary_to_json summary) (An.Vuln.to_json v)
            (String.concat ","
               (List.map
                  (fun (axis, (rho, (hits, denom))) ->
                    Printf.sprintf
                      "\"%s\":{\"spearman\":%.6f,\"top_k_hits\":%d,\"top_k\":%d}"
                      axis rho hits denom)
                  (agreements v)))
      end
      else begin
        R.section
          (Printf.sprintf "forensic report: %s under %s (%d faults, seed %d)"
             (Suite.qualified_name b) rung summary.F.total seed);
        let cls = summary.F.by_class in
        Printf.printf
          "landed %d/%d   masked %d   detected %d   sdc %d   crashed %d\n"
          summary.F.landed summary.F.total cls.F.masked cls.F.detected
          cls.F.sdc cls.F.crashed;
        Printf.printf
          "mean detect latency %.1f   mean rewind %.1f   dropped events %d\n"
          summary.F.mean_detect_latency summary.F.mean_rewind
          summary.F.dropped_events;
        let table title key_title rows =
          R.subsection title;
          let cols =
            [ { R.title = key_title; width = 24 };
              { R.title = "total"; width = 6 }; { R.title = "masked"; width = 7 };
              { R.title = "detect"; width = 7 }; { R.title = "sdc"; width = 5 };
              { R.title = "crash"; width = 6 }; { R.title = "vuln"; width = 7 };
            ]
          in
          R.print_header cols;
          List.iteri
            (fun i (row : F.row) ->
              if i < top then
                let c = row.F.counts in
                R.print_row cols
                  [ row.F.key; string_of_int (F.counts_total c);
                    string_of_int c.F.masked; string_of_int c.F.detected;
                    string_of_int c.F.sdc; string_of_int c.F.crashed;
                    Printf.sprintf "%.3f" (F.vulnerability c);
                  ])
            rows
        in
        table "most vulnerable sites" "site (block:index)" summary.F.by_site;
        table "most vulnerable registers" "register" summary.F.by_register;
        table "most vulnerable regions" "region" summary.F.by_region;
        (match static_v with
        | None -> ()
        | Some v ->
          let stable title key_title rows =
            R.subsection title;
            let cols =
              [ { R.title = key_title; width = 24 };
                { R.title = "exposure"; width = 10 };
                { R.title = "score"; width = 10 };
              ]
            in
            R.print_header cols;
            List.iteri
              (fun i (row : An.Vuln.row) ->
                if i < top then
                  R.print_row cols
                    [ row.An.Vuln.key;
                      Printf.sprintf "%.2f" row.An.Vuln.exposure;
                      Printf.sprintf "%.4f" row.An.Vuln.score;
                    ])
              rows
          in
          Printf.printf
            "\nstatic estimate (no faults): predicted AVF %.6f, %d coverage \
             gap(s), wcdl %d\n"
            v.An.Vuln.predicted_avf
            (List.length v.An.Vuln.gaps)
            v.An.Vuln.wcdl;
          stable "most vulnerable sites (static)" "site (block:index)"
            v.An.Vuln.by_site;
          stable "most vulnerable registers (static)" "register"
            v.An.Vuln.by_register;
          stable "most vulnerable regions (static)" "region" v.An.Vuln.by_region;
          R.subsection "static-vs-dynamic rank agreement";
          List.iter
            (fun (axis, (rho, (hits, denom))) ->
              Printf.printf "  %-10s spearman %+.3f   top-%d overlap %d/%d\n"
                axis rho denom hits denom)
            (agreements v));
        match victim with
        | None -> ()
        | Some (v, affected) ->
          let convicted =
            match summary.F.by_region with
            | top :: _ -> List.mem top.F.key (List.map string_of_int affected)
            | [] -> false
          in
          Printf.printf
            "\nmutant ground truth: checkpoints of %s dropped (live-in of \
             region%s %s) -> top-ranked region %s\n"
            (Turnpike_ir.Reg.to_string v)
            (if List.length affected = 1 then "" else "s")
            (String.concat "," (List.map string_of_int affected))
            (if convicted then "CONVICTED" else "NOT convicted");
          if not convicted then exit 1
      end;
      match csv_dir with
      | None -> ()
      | Some dir ->
        (try Unix.mkdir dir 0o755 with _ -> ());
        Turnpike.Csv_export.forensics ~dir records summary;
        if not json then Printf.printf "[forensic csv written under %s]\n" dir
  in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(
      const run $ jobs_arg $ bench_arg $ scheme_arg $ scale_arg $ faults_arg
      $ seed_arg $ top_arg $ mutant_arg $ csv_arg $ compare_static_arg
      $ json_arg)

(* ------------------------------------------------------------------ *)

let lint_cmd =
  let doc =
    "Run the static resilience soundness checks over compiled benchmarks. \
     Every scheme of the ablation ladder is checked unless -s narrows it; \
     every benchmark is checked unless -b does. Exits non-zero if any \
     Error-severity diagnostic is found. Output is identical at any --jobs \
     count."
  in
  let bench_opt_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "b"; "benchmark" ] ~docv:"NAME"
          ~doc:"Benchmark to lint (default: all 36).")
  in
  let scheme_opt_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "s"; "scheme" ] ~docv:"SCHEME"
          ~doc:"Scheme to lint (default: baseline plus the full ladder).")
  in
  let per_pass_arg =
    Arg.(
      value & flag
      & info [ "per-pass" ]
          ~doc:
            "Run the registry between every compiler pass and attribute \
             each diagnostic to the pass that introduced it. Incremental: \
             only checks whose declared facet reads a pass dirtied are \
             re-run.")
  in
  let explain_arg =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:
            "With --per-pass: print, for every cell, which checks the \
             incremental registry re-ran after each pass (text output \
             only).")
  in
  let full_recheck_arg =
    Arg.(
      value & flag
      & info [ "full-recheck" ]
          ~doc:
            "With --per-pass: disable the incremental engine and re-run \
             every check after every pass. The report is byte-identical \
             to the incremental one; this is the oracle it is diffed \
             against.")
  in
  let vuln_arg =
    Arg.(
      value & flag
      & info [ "vuln" ]
          ~doc:
            "Instead of diagnostics, report the static ACE/AVF vulnerability \
             estimate per cell: ranked region/register/site tables and the \
             predicted AVF, computed purely from the IR (no faults \
             injected). --per-pass/--explain/--full-recheck do not apply.")
  in
  let vcsv_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"DIR"
          ~doc:
            "With --vuln: write vuln_by_site.csv, vuln_by_register.csv and \
             vuln_by_region.csv under $(docv) (one score column per scheme; \
             keys a scheme never ranks render as nan).")
  in
  let run () bench scheme per_pass explain full_recheck vuln vcsv sb scale
      json =
    let benches =
      match bench with
      | None -> Ok (Suite.all ())
      | Some name -> Result.map (fun b -> [ b ]) (find_bench name)
    in
    let scheme_list =
      match scheme with
      | None -> Ok (List.map snd schemes)
      | Some name -> (
        match List.assoc_opt name schemes with
        | Some s -> Ok [ s ]
        | None -> Error (Printf.sprintf "unknown scheme %s" name))
    in
    match (benches, scheme_list) with
    | Error e, _ | _, Error e ->
      prerr_endline e;
      exit 1
    | Ok benches, Ok scheme_list ->
      if vuln then begin
        let report =
          Turnpike.Lint.run_vuln ~sb_size:sb ~scale ~schemes:scheme_list
            benches
        in
        if json then print_string (Turnpike.Lint.vuln_to_json report)
        else print_string (Turnpike.Lint.vuln_to_text report);
        match vcsv with
        | None -> ()
        | Some dir ->
          (try Unix.mkdir dir 0o755 with _ -> ());
          Turnpike.Csv_export.vuln ~dir report;
          if not json then Printf.printf "[vuln csv written under %s]\n" dir
      end
      else begin
        let report =
          Turnpike.Lint.run ~per_pass ~full_recheck ~sb_size:sb ~scale
            ~schemes:scheme_list benches
        in
        if json then print_string (Turnpike.Lint.to_json report)
        else print_string (Turnpike.Lint.to_text ~explain report);
        if report.Turnpike.Lint.errors > 0 then exit 1
      end
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(
      const run $ jobs_arg $ bench_opt_arg $ scheme_opt_arg $ per_pass_arg
      $ explain_arg $ full_recheck_arg $ vuln_arg $ vcsv_arg $ sb_arg
      $ scale_arg $ json_arg)

(* ------------------------------------------------------------------ *)

let compile_cmd =
  let module PP = Turnpike_compiler.Pass_pipeline in
  let module Tk = Turnpike_frontend.Tk in
  let doc =
    "Compile a .tk kernel file (docs/LANGUAGE.md) through the pass pipeline \
     and print the executed passes, the static statistics and the resulting \
     IR listing. The output is fully deterministic: byte-identical at any \
     --jobs count."
  in
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE.tk" ~doc:"Kernel source file.")
  in
  let pipeline_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "pipeline" ] ~docv:"SPEC"
          ~doc:
            "Pass pipeline to run: $(b,default); removals like \
             $(b,-licm_sink,-scheduling) (the default sequence minus those \
             passes); or an explicit ordered pass list like \
             $(b,regalloc,partition_and_checkpoint,region_metadata). The \
             spec is validated against each pass's dirtied/read facet \
             contracts — dropping a mandatory pass or ordering passes \
             unsoundly is rejected with a diagnostic.")
  in
  let run () file scheme sb scale pipeline json =
    if not (Tk.is_tk_file file) then begin
      Printf.eprintf "%s: error: expected a .tk kernel file\n" file;
      exit 1
    end;
    match Tk.compile_file ~scale file with
    | Error e ->
      prerr_endline e;
      exit 1
    | Ok prog ->
      let opts = Turnpike.Scheme.compile_opts scheme ~sb_size:sb in
      let pipeline =
        match pipeline with
        | None -> None
        | Some spec -> (
          match PP.resolve_pipeline ~opts spec with
          | Ok names -> Some names
          | Error msg ->
            Printf.eprintf "invalid --pipeline spec: %s\n" msg;
            exit 1)
      in
      let c = PP.compile ~opts ?pipeline prog in
      let passes =
        match pipeline with Some names -> names | None -> PP.pass_names opts
      in
      if json then
        Printf.printf
          "{\"kernel\":\"%s\",\"scheme\":\"%s\",\"scale\":%d,\"sb\":%d,\"passes\":[%s],\"regions\":%d,\"static_stats\":%s}\n"
          prog.Turnpike_ir.Prog.func.Turnpike_ir.Func.name
          scheme.Turnpike.Scheme.name scale sb
          (String.concat "," (List.map (Printf.sprintf "\"%s\"") passes))
          (Array.length c.PP.regions)
          (Turnpike_compiler.Static_stats.to_json c.PP.stats)
      else begin
        Printf.printf "kernel %s from %s (scheme %s, scale %d, sb %d)\n"
          prog.Turnpike_ir.Prog.func.Turnpike_ir.Func.name file
          scheme.Turnpike.Scheme.name scale sb;
        Printf.printf "passes: %s\n" (String.concat " -> " passes);
        Printf.printf "static: %s\n"
          (Turnpike_compiler.Static_stats.to_string c.PP.stats);
        Printf.printf "regions: %d\n\n" (Array.length c.PP.regions);
        print_string (Turnpike_ir.Func.to_string c.PP.prog.Turnpike_ir.Prog.func)
      end
  in
  Cmd.v (Cmd.info "compile" ~doc)
    Term.(
      const run $ jobs_arg $ file_arg $ scheme_arg $ sb_arg $ scale_arg
      $ pipeline_arg $ json_arg)

(* ------------------------------------------------------------------ *)

let recovery_cmd =
  let doc = "Dump the generated per-region recovery blocks (paper Fig 1b)." in
  let run name scale =
    match find_bench name with
    | Error e ->
      prerr_endline e;
      exit 1
    | Ok b ->
      let c =
        Turnpike.Run.compile_with
          { Turnpike.Run.default_params with scale }
          Turnpike.Scheme.turnpike b
      in
      let blocks =
        Turnpike_compiler.Recovery_codegen.generate ~compiled:c.Turnpike.Run.compiled
          ~nregs:32
      in
      Printf.printf "%s: %d regions, %d recovery instructions\n\n"
        (Suite.qualified_name b) (List.length blocks)
        (Turnpike_compiler.Recovery_codegen.size blocks);
      List.iter
        (fun blk -> print_string (Turnpike_compiler.Recovery_codegen.to_string blk))
        blocks
  in
  Cmd.v (Cmd.info "recovery" ~doc) Term.(const run $ bench_arg $ scale_arg)

let cost_cmd =
  let doc = "Print the hardware cost table (paper Table 1)." in
  let run () =
    List.iter
      (fun (r : Turnpike_arch.Cost_model.table1_row) ->
        Printf.printf "%-46s %12.3f um^2 %10.5f pJ\n" r.Turnpike_arch.Cost_model.label
          r.Turnpike_arch.Cost_model.area_um2 r.Turnpike_arch.Cost_model.energy_pj)
      (Turnpike_arch.Cost_model.table1 ())
  in
  Cmd.v (Cmd.info "cost" ~doc) Term.(const run $ const ())

let wcdl_cmd =
  let doc = "Query the acoustic-sensor model (paper Fig 18)." in
  let sensors_arg =
    Arg.(value & opt int 300 & info [ "n"; "sensors" ] ~docv:"N" ~doc:"Deployed sensors.")
  in
  let clock_arg =
    Arg.(value & opt float 2.5 & info [ "f"; "ghz" ] ~docv:"GHZ" ~doc:"Core clock.")
  in
  let run sensors ghz =
    let s = Turnpike_arch.Sensor.create ~num_sensors:sensors ~clock_ghz:ghz () in
    Printf.printf "%d sensors at %.1fGHz: WCDL %d cycles, ~%.2f%% die area\n" sensors ghz
      (Turnpike_arch.Sensor.wcdl s)
      (Turnpike_arch.Sensor.area_overhead_percent s)
  in
  Cmd.v (Cmd.info "wcdl" ~doc) Term.(const run $ sensors_arg $ clock_arg)

let explore_cmd =
  let module X = Turnpike.Explore in
  let module DP = Turnpike.Design_point in
  let doc =
    "Explore the cross-layer design space — core model, store-buffer depth, \
     CLQ size, color-pool width, sensor deployment and compiler rung — and \
     report the Pareto frontier over (runtime overhead, area, energy, \
     campaign SDC rate). Evaluation runs as successive halving: cheap proxy \
     budgets score the whole grid, and only the Pareto-best half is promoted \
     toward full-scale simulation with CI-stopped fault campaigns. Output is \
     identical at any --jobs count; each frontier point is re-validated at \
     full scale before reporting (non-zero exit if validation fails)."
  in
  let grid_arg =
    Arg.(value & opt string "default"
         & info [ "grid" ] ~docv:"GRID"
             ~doc:"Design grid: $(b,tiny) (4 points), $(b,default) (64) or \
                   $(b,wide) (486).")
  in
  let faults_arg =
    Arg.(value & opt (some int) None
         & info [ "n"; "faults" ] ~docv:"N"
             ~doc:"Override the full-scale rung's campaign fault supply.")
  in
  let csv_arg =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"DIR"
             ~doc:"Write explore_grid.csv and explore_pareto.csv under $(docv).")
  in
  let forensics_arg =
    Arg.(value & flag & info [ "forensics" ] ~doc:CA.doc_forensics)
  in
  let static_proxy_arg =
    Arg.(
      value & flag
      & info [ "static-proxy" ]
          ~doc:
            "Prepend a zero-cost rung that halves the grid on the static \
             ACE/AVF estimate (predicted AVF + weighted code growth) before \
             any simulation or campaign. The frontier is still re-validated \
             at full scale.")
  in
  let run () grid scale seed ci faults csv_dir forensics static_proxy =
    match DP.spec_of_string grid with
    | Error msg ->
      prerr_endline msg;
      exit 1
    | Ok spec ->
      let params = { Turnpike.Run.default_params with Turnpike.Run.scale } in
      let budgets =
        (* --faults / --ci override the final (full-scale) rung's campaign. *)
        match List.rev (X.budgets_for params) with
        | [] -> []
        | last :: rev ->
          let last =
            {
              last with
              X.max_faults = Option.value ~default:last.X.max_faults faults;
              ci_half_width = Option.value ~default:last.X.ci_half_width ci;
            }
          in
          List.rev (last :: rev)
      in
      let report = X.run ~budgets ~seed ~params ~forensics ~static_proxy ~spec () in
      Printf.printf "grid %s: %d points over {%s}, seed %d\n" grid
        report.X.grid_size
        (String.concat ", " report.X.benches)
        report.X.seed;
      Printf.printf "evaluations per budget rung: %s\n"
        (String.concat ", "
           (List.map
              (fun (l, n) -> Printf.sprintf "%s=%d" l n)
              report.X.evals_per_budget));
      Printf.printf "full-scale evaluations: %d/%d\n" report.X.full_scale_evals
        report.X.grid_size;
      print_endline "Pareto frontier (full-scale survivors):";
      List.iter
        (fun (r : X.point_result) ->
          let o = r.X.objectives in
          Printf.printf
            "  %-36s overhead %.3f  area %.1f um^2  %.2f pJ/kinstr  SDC %.4f \
             (%d faults)\n"
            (DP.id r.X.point) o.X.overhead o.X.area_um2 o.X.energy_pj_per_kinstr
            o.X.sdc_rate o.X.faults;
          match r.X.forensics with
          | None -> ()
          | Some s ->
            let module F = Turnpike_resilience.Forensics in
            let top =
              match s.F.by_site with
              | [] -> "none"
              | row :: _ ->
                Printf.sprintf "%s (vuln %.3f)" row.F.key
                  (F.vulnerability row.F.counts)
            in
            Printf.printf
              "    forensics[%s]: landed %d/%d, top site %s, dropped %d\n"
              s.F.rung s.F.landed s.F.total top s.F.dropped_events)
        report.X.frontier;
      Printf.printf "frontier re-validation at full scale: %s\n"
        (if report.X.validated then "ok" else "FAILED");
      (match csv_dir with
      | None -> ()
      | Some dir ->
        (try Unix.mkdir dir 0o755 with _ -> ());
        let grid_path = Filename.concat dir "explore_grid.csv" in
        let pareto_path = Filename.concat dir "explore_pareto.csv" in
        Turnpike.Csv_export.explore_grid ~path:grid_path report;
        Turnpike.Csv_export.explore_pareto ~path:pareto_path report;
        Printf.printf "[csv written to %s and %s]\n" grid_path pareto_path);
      if not report.X.validated then exit 1
  in
  Cmd.v (Cmd.info "explore" ~doc)
    Term.(
      const run $ jobs_arg $ grid_arg $ scale_arg $ seed_arg $ ci_arg
      $ faults_arg $ csv_arg $ forensics_arg $ static_proxy_arg)

let () =
  let doc = "Turnpike: lightweight soft error resilience for in-order cores (MICRO'21 reproduction)" in
  let info = Cmd.info "turnpike-cli" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; run_cmd; trace_cmd; inject_cmd; report_cmd; lint_cmd;
            compile_cmd; recovery_cmd; cost_cmd; wcdl_cmd; explore_cmd;
          ]))
