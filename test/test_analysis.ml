(* Tests for the static resilience soundness checker (turnpike.analysis).

   Three layers:
   - framework units: diagnostic ordering/identity, per-pass attribution;
   - hand-built negative programs that each check must reject;
   - the differential oracle: three compiler-bug mutants that the analyzer
     must flag statically AND that a fault-injection campaign must convict
     dynamically (SDC or crash on at least one fault) — the checker's
     verdicts have teeth, not just opinions. *)

open Turnpike_ir
module Analysis = Turnpike_analysis
module Diag = Turnpike_analysis.Diag
module Context = Turnpike_analysis.Context
module Registry = Turnpike_analysis.Registry
module PP = Turnpike_compiler.Pass_pipeline
module Claims = Turnpike_compiler.Claims
module Suite = Turnpike_workloads.Suite
module Recovery = Turnpike_resilience.Recovery
module Verifier = Turnpike_resilience.Verifier
module Injector = Turnpike_resilience.Injector
module Telemetry = Turnpike_telemetry

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let r1 = Reg.phys 1
let r2 = Reg.phys 2
let r3 = Reg.phys 3

let blk ?(term = Block.Ret) label body =
  Block.create ~body:(Array.of_list body) ~term label

let mkfunc ?(entry = "entry") blocks = Func.create ~name:"t" ~entry blocks

let mkctx ?entry_defined ?recovery_exprs ?claims ?sb_size ?clq_entries
    ?rbb_size ?(resilient = true) f =
  Context.make ?entry_defined ?recovery_exprs ?claims ?sb_size ?clq_entries
    ?rbb_size ~resilient f

let contains ~affix s =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  m = 0 || go 0

let errors ds = List.filter (fun d -> d.Diag.severity = Diag.Error) ds
let warns ds = List.filter (fun d -> d.Diag.severity = Diag.Warn) ds

let has_error ~check:c ~containing ds =
  List.exists
    (fun d ->
      d.Diag.severity = Diag.Error
      && String.equal d.Diag.check c
      && contains ~affix:containing d.Diag.message)
    ds

(* ------------------------------------------------------------------ *)
(* Framework units *)

let test_diag_order_and_identity () =
  let d ?block ?instr ?pass sev msg =
    Diag.make ~check:"c" ~severity:sev ~func:"f" ?block ?instr ?pass msg
  in
  let a = d ~block:"b1" ~instr:2 Diag.Warn "w" in
  let b = d ~block:"b1" ~instr:2 Diag.Error "e" in
  let c = d ~block:"b2" Diag.Info "i" in
  let sorted = Diag.sort [ c; a; b; a ] in
  check_int "duplicate dropped" 3 (List.length sorted);
  check "most severe first at same site" true
    ((List.nth sorted 0).Diag.severity = Diag.Error);
  check "severity lattice ordered" true (Diag.Info < Diag.Warn && Diag.Warn < Diag.Error);
  check "max severity" true (Diag.max_severity sorted = Some Diag.Error);
  check_int "error count" 1 (Diag.error_count sorted);
  (* Identity ignores pass provenance: the same finding after a different
     pass is the same finding. *)
  check_str "key ignores pass" (Diag.key a) (Diag.key (Diag.with_pass (Some "regalloc") a));
  check "json has fixed shape" true
    (contains ~affix:"\"check\":\"c\",\"severity\":\"error\"" (Diag.to_json b));
  check_str "escape" "a\\\"b\\\\c" (Diag.json_escape "a\"b\\c")

let test_registry_fresh_attribution () =
  let d pass msg =
    Diag.make ~check:"c" ~severity:Diag.Error ~func:"f" ?pass msg
  in
  let seen = Hashtbl.create 8 in
  let first = Registry.fresh ~seen [ d None "x"; d None "y" ] in
  check_int "initial run reports all" 2 (List.length first);
  (* Same findings after a pass: already attributed, not fresh. *)
  let again = Registry.fresh ~seen [ d (Some "regalloc") "x"; d (Some "regalloc") "y" ] in
  check_int "re-reported findings are not fresh" 0 (List.length again);
  let newer = Registry.fresh ~seen [ d (Some "scheduling") "x"; d (Some "scheduling") "z" ] in
  check_int "only the new finding survives" 1 (List.length newer);
  check "new finding keeps its pass" true
    ((List.hd newer).Diag.pass = Some "scheduling");
  check_int "registry covers all eight checks" 8 (List.length Registry.names)

(* ------------------------------------------------------------------ *)
(* Hand-built negative programs, one per check *)

let test_wellformed_rejects () =
  (* Dangling terminator target: structural error, and no crash from the
     unbuildable CFG. *)
  let f = mkfunc [ blk ~term:(Block.Jump "nowhere") "entry" [] ] in
  let ds = Registry.run_whole (mkctx ~resilient:false f) in
  check "dangling label flagged" true
    (has_error ~check:"wellformed" ~containing:"unknown label" ds);
  (* Virtual register after regalloc. *)
  let f = mkfunc [ blk "entry" [ Instr.Mov (Reg.virt 0, Instr.Imm 1) ] ] in
  let ds = Analysis.Wellformed.run (mkctx ~resilient:false f) in
  check "virtual register flagged" true
    (has_error ~check:"wellformed" ~containing:"virtual register" ds);
  (* Physical register outside the machine file. *)
  let f = mkfunc [ blk "entry" [ Instr.Mov (Reg.phys 40, Instr.Imm 1) ] ] in
  let ds = Analysis.Wellformed.run (mkctx ~resilient:false f) in
  check "out-of-file register flagged" true
    (has_error ~check:"wellformed" ~containing:"machine file" ds);
  (* Use before any definition: a warning (the interpreter reads 0). *)
  let f =
    mkfunc [ blk "entry" [ Instr.Binop (Instr.Add, r1, r2, Instr.Imm 1) ] ]
  in
  let ds = Analysis.Wellformed.run (mkctx ~resilient:false f) in
  check "use-before-def warned" true
    (List.exists
       (fun d -> contains ~affix:"before any definition" d.Diag.message)
       (warns ds));
  (* And the clean variant is clean. *)
  let f =
    mkfunc
      [ blk "entry" [ Instr.Mov (r2, Instr.Imm 3); Instr.Binop (Instr.Add, r1, r2, Instr.Imm 1) ] ]
  in
  check_int "clean block has no findings" 0
    (List.length (Analysis.Wellformed.run (mkctx ~resilient:false f)))

let test_regions_view_rejects () =
  (* Boundary not at instruction 0. *)
  let f =
    mkfunc [ blk "entry" [ Instr.Mov (r1, Instr.Imm 1); Instr.Boundary 0 ] ]
  in
  let rv = Context.regions (mkctx f) in
  check "mid-block boundary flagged" true
    (has_error ~check:"regions" ~containing:"start of its block" rv.Analysis.Regions_view.diags
    || List.length (errors rv.Analysis.Regions_view.diags) > 0);
  (* A join block inside a region (two predecessors, no boundary). *)
  let f =
    mkfunc
      [
        blk ~term:(Block.Branch (r1, "a", "b")) "entry"
          [ Instr.Boundary 0; Instr.Mov (r1, Instr.Imm 1) ];
        blk ~term:(Block.Jump "join") "a" [];
        blk ~term:(Block.Jump "join") "b" [];
        blk "join" [];
      ]
  in
  let rv = Context.regions (mkctx f) in
  check "boundary-less join flagged" true
    (List.length (errors rv.Analysis.Regions_view.diags) > 0)

let test_recoverability_rejects () =
  let two_regions extra =
    mkfunc
      [
        blk ~term:(Block.Jump "next")
          "entry"
          ([ Instr.Boundary 0; Instr.Mov (r1, Instr.Imm 5) ] @ extra);
        blk "next" [ Instr.Boundary 1; Instr.Binop (Instr.Add, r2, r1, Instr.Imm 1) ];
      ]
  in
  (* r1 is defined in region 0, live into region 1, never checkpointed. *)
  let ds = Analysis.Recoverability.run (mkctx (two_regions [])) in
  check "uncovered live-in flagged" true
    (has_error ~check:"recoverability" ~containing:"no checkpoint covers it" ds);
  (* Checkpointing it fixes the program. *)
  let ds = Analysis.Recoverability.run (mkctx (two_regions [ Instr.Ckpt r1 ])) in
  check_int "checkpointed live-in accepted" 0 (List.length ds);
  (* A recovery expression without slot dependences also fixes it. *)
  let ds =
    Analysis.Recoverability.run
      (mkctx ~recovery_exprs:[ (r1, Recovery_expr.Const 5) ] (two_regions []))
  in
  check_int "constant recovery expression accepted" 0 (List.length ds);
  (* But an expression reading an uncovered slot does not. *)
  let ds =
    Analysis.Recoverability.run
      (mkctx ~recovery_exprs:[ (r1, Recovery_expr.Slot r1) ] (two_regions []))
  in
  check "expression over uncovered slot flagged" true
    (has_error ~check:"recoverability" ~containing:"not covered" ds)

let test_war_rejects () =
  (* One region; a load at [8] precedes a store to [8] (WAR) while a store
     to [16] is independent. *)
  let f =
    mkfunc
      [
        blk "entry"
          [
            Instr.Boundary 0;
            Instr.Load (r1, Reg.zero, 8, Instr.App_mem);
            Instr.Store (r1, Reg.zero, 8, Instr.App_mem);
            Instr.Store (r1, Reg.zero, 16, Instr.App_mem);
          ];
      ]
  in
  let indep = Analysis.War.independent_set (mkctx f) in
  check "aliased store is not independent" false (List.mem ("entry", 2) indep);
  check "disjoint store is independent" true (List.mem ("entry", 3) indep);
  let claims sites = { Context.no_claims with Context.bypass_stores = sites } in
  let ds = Analysis.War.run (mkctx ~claims:(claims [ ("entry", 2) ]) f) in
  check "bogus bypass claim flagged" true
    (has_error ~check:"war-bypass" ~containing:"WAR hazard" ds);
  let ds = Analysis.War.run (mkctx ~claims:(claims [ ("entry", 1) ]) f) in
  check "claim on a non-store flagged" true
    (has_error ~check:"war-bypass" ~containing:"does not name a store" ds);
  let ds = Analysis.War.run (mkctx ~claims:(claims [ ("entry", 3) ]) f) in
  check_int "correct claim accepted (nothing missed)" 0 (List.length ds)

let test_capacity_rejects () =
  let store off = Instr.Store (r1, Reg.zero, off, Instr.App_mem) in
  (* Five stores in one region against a 4-entry SB: commit deadlock. *)
  let f =
    mkfunc
      [
        blk "entry"
          ([ Instr.Boundary 0; Instr.Mov (r1, Instr.Imm 1) ]
          @ List.map store [ 0; 8; 16; 24; 32 ]);
      ]
  in
  let ds = Analysis.Capacity.run (mkctx ~sb_size:4 f) in
  check "SB overflow flagged" true
    (has_error ~check:"capacity" ~containing:"commit deadlock" ds);
  (* Direct-release claim on a checkpoint inside a loop. *)
  let f =
    mkfunc
      [
        blk ~term:(Block.Jump "loop") "entry"
          [ Instr.Boundary 0; Instr.Mov (r1, Instr.Imm 4) ];
        blk ~term:(Block.Branch (r1, "loop", "out")) "loop"
          [
            Instr.Boundary 1;
            Instr.Binop (Instr.Sub, r1, r1, Instr.Imm 1);
            Instr.Ckpt r1;
          ];
        blk "out" [ Instr.Boundary 2; store 0 ];
      ]
  in
  let claims = { Context.no_claims with Context.direct_ckpts = [ ("loop", 2) ] } in
  let ds = Analysis.Capacity.run (mkctx ~claims f) in
  check "loop-resident direct release flagged" true
    (has_error ~check:"capacity" ~containing:"inside a loop" ds);
  (* Claim on a non-checkpoint site. *)
  let claims = { Context.no_claims with Context.direct_ckpts = [ ("loop", 1) ] } in
  let ds = Analysis.Capacity.run (mkctx ~claims f) in
  check "claim on non-checkpoint flagged" true
    (has_error ~check:"capacity" ~containing:"does not name a checkpoint" ds);
  (* Nonsensical machine: a 0-entry compact CLQ. *)
  let ds = Analysis.Capacity.run (mkctx ~clq_entries:0 f) in
  check "empty CLQ flagged" true
    (has_error ~check:"capacity" ~containing:"CLQ configured" ds)

let test_schedule_rejects () =
  let load = Instr.Load (r1, Reg.zero, 8, Instr.App_mem) in
  let store = Instr.Store (r1, Reg.zero, 8, Instr.App_mem) in
  let mov = Instr.Mov (r2, Instr.Imm 7) in
  let before = mkfunc [ blk "entry" [ load; store; mov ] ] in
  (* Swapping the dependent load/store pair must be rejected... *)
  let after = mkfunc [ blk "entry" [ store; load; mov ] ] in
  let ds = Analysis.Schedule.run ~before (mkctx ~resilient:false after) in
  check "dependent reorder flagged" true
    (has_error ~check:"sched-deps" ~containing:"reordered dependent" ds);
  (* ...moving the independent mov is fine... *)
  let after = mkfunc [ blk "entry" [ mov; load; store ] ] in
  check_int "independent reorder accepted" 0
    (List.length (Analysis.Schedule.run ~before (mkctx ~resilient:false after)));
  (* ...and dropping an instruction changes the multiset. *)
  let after = mkfunc [ blk "entry" [ load; store ] ] in
  let ds = Analysis.Schedule.run ~before (mkctx ~resilient:false after) in
  check "dropped instruction flagged" true
    (has_error ~check:"sched-deps" ~containing:"multiset" ds)

(* ------------------------------------------------------------------ *)
(* Pipeline integration: one declared pass list, per-pass provenance *)

let test_pass_list_single_source () =
  check "baseline pipeline is regalloc only" true
    (PP.pass_names PP.baseline_opts = [ "regalloc" ]);
  check "turnstile adds partitioning and metadata" true
    (PP.pass_names PP.turnstile_opts
    = [ "regalloc"; "partition_and_checkpoint"; "region_metadata" ]);
  check "pair-check passes are declared pass names" true
    (List.for_all
       (fun p -> List.mem p (PP.pass_names PP.turnpike_opts))
       Registry.pair_passes);
  (* Telemetry spans use exactly the declared names. *)
  let tel = Telemetry.create () in
  let prog = (List.hd (Suite.find_by_name "mcf")).Suite.build ~scale:1 in
  ignore (PP.compile ~opts:PP.turnpike_opts ~tel prog);
  let span_names =
    List.filter_map
      (fun (e : Telemetry.event) ->
        if e.Telemetry.cat = "compiler" then Some e.Telemetry.name else None)
      (Telemetry.events tel)
  in
  List.iter
    (fun n -> check ("span " ^ n ^ " is a declared pass") true (List.mem n span_names))
    (PP.pass_names PP.turnpike_opts)

let test_perpass_clean_on_shipped () =
  let prog = (List.hd (Suite.find_by_name "libquan")).Suite.build ~scale:1 in
  let c = PP.compile ~opts:PP.turnpike_opts ~check:PP.PerPass prog in
  check_int "no errors on a shipped workload" 0 (Diag.error_count c.PP.diags);
  check "diagnostics carry pass provenance" true
    (List.for_all
       (fun d ->
         match d.Diag.pass with
         | None -> true
         | Some p -> List.mem p (PP.pass_names PP.turnpike_opts))
       c.PP.diags)

(* ------------------------------------------------------------------ *)
(* Differential oracle: analyzer verdict vs fault-injection ground truth *)

let bench name = List.hd (Suite.find_by_name name)

let compile_bench scheme name =
  let prog = (bench name).Suite.build ~scale:2 in
  PP.compile ~opts:(Turnpike.Scheme.compile_opts scheme ~sb_size:4) prog

let convicted ?config c =
  let trace, golden = Interp.trace_run ~fuel:400_000 c.PP.prog in
  check "mutant trace complete" true trace.Trace.complete;
  let faults = Injector.campaign ~seed:11 ~count:40 trace in
  let rep = Verifier.run_campaign ?config ~golden ~compiled:c faults in
  rep.Verifier.sdc + rep.Verifier.crashed

let mutant_errors ~pass c =
  errors (Registry.run_whole (PP.analysis_context ~pass c))

let test_mutant_dropped_checkpoint () =
  (* A buggy "pruning" that deletes checkpoints without recording recovery
     expressions. Statically: a recoverability error. Dynamically: restarts
     restore a stale value — SDC. *)
  let c = compile_bench Turnpike.Scheme.turnstile "mcf" in
  let f = c.PP.prog.Prog.func in
  let def_count r =
    Func.fold_instrs
      (fun acc i -> if List.mem r (Instr.defs i) then acc + 1 else acc)
      0 f
  in
  let victim =
    Array.to_list c.PP.regions
    |> List.concat_map (fun (ri : PP.region_info) ->
           if ri.PP.id > 0 then ri.PP.live_in else [])
    |> List.find (fun r ->
           def_count r > 0
           && Func.fold_instrs
                (fun acc i -> if Instr.equal i (Instr.Ckpt r) then acc + 1 else acc)
                0 f
              > 0)
  in
  Func.iter_blocks
    (fun b ->
      b.Block.body <-
        Array.of_list
          (List.filter
             (fun i -> not (Instr.equal i (Instr.Ckpt victim)))
             (Array.to_list b.Block.body)))
    f;
  (* Checkpoint sites moved: the pipeline's claims are stale; the mutant
     models a compiler that lost them too. *)
  let c = { c with PP.claims = Claims.empty } in
  let errs = mutant_errors ~pass:"pruning" c in
  check "analyzer rejects the dropped checkpoint" true
    (has_error ~check:"recoverability" ~containing:"no checkpoint covers it" errs);
  check "provenance names the buggy pass" true
    (List.for_all (fun d -> d.Diag.pass = Some "pruning") errs);
  check "campaign convicts the mutant" true (convicted c > 0)

let test_mutant_bogus_bypass_claim () =
  (* A buggy WAR analysis that claims a store with an earlier in-region
     aliasing load. Statically: a war-bypass error. Dynamically (claims
     honored): rollback replays the load against the released store — SDC. *)
  let c = compile_bench Turnpike.Scheme.turnpike "radix" in
  let f = c.PP.prog.Prog.func in
  let indep = Analysis.War.independent_set (PP.analysis_context c) in
  let bogus = ref [] in
  Func.iter_blocks
    (fun b ->
      Array.iteri
        (fun i ins ->
          if Instr.is_store ins && not (List.mem (b.Block.label, i) !bogus)
             && not (List.mem (b.Block.label, i) indep)
          then bogus := (b.Block.label, i) :: !bogus)
        b.Block.body)
    f;
  check "radix has a WAR-unsafe store to miscast" true (!bogus <> []);
  let claims =
    {
      c.PP.claims with
      Claims.bypass_stores =
        List.sort_uniq compare (!bogus @ c.PP.claims.Claims.bypass_stores);
    }
  in
  let c = { c with PP.claims = claims } in
  let errs = mutant_errors ~pass:"region_metadata" c in
  check "analyzer rejects the bogus bypass claim" true
    (has_error ~check:"war-bypass" ~containing:"WAR hazard" errs);
  let config = { Recovery.default_config with Recovery.honor_static_claims = true } in
  check "campaign convicts the mutant" true (convicted ~config c > 0)

let test_mutant_loop_direct_release () =
  (* A buggy coloring/claim pass that direct-releases loop-resident
     checkpoints: each iteration overwrites the only verified slot, so a
     rollback restores a too-new value (the paper's Fig 16 hazard).
     Statically: a capacity error. Dynamically (claims honored): SDC. *)
  let c = compile_bench Turnpike.Scheme.turnpike "hmmer" in
  let f = c.PP.prog.Prog.func in
  let cfg = Cfg.build f in
  let self_reachable label =
    let rec go visited = function
      | [] -> false
      | l :: rest ->
        if String.equal l label then true
        else if List.mem l visited then go visited rest
        else go (l :: visited) (Cfg.successors cfg l @ rest)
    in
    go [] (Cfg.successors cfg label)
  in
  let bogus = ref [] in
  Func.iter_blocks
    (fun b ->
      if self_reachable b.Block.label then
        Array.iteri
          (fun i ins ->
            match ins with
            | Instr.Ckpt _ -> bogus := (b.Block.label, i) :: !bogus
            | _ -> ())
          b.Block.body)
    f;
  check "hmmer has loop-resident checkpoints to miscast" true (!bogus <> []);
  let claims =
    {
      c.PP.claims with
      Claims.direct_ckpts =
        List.sort_uniq compare (!bogus @ c.PP.claims.Claims.direct_ckpts);
    }
  in
  let c = { c with PP.claims = claims } in
  let errs = mutant_errors ~pass:"region_metadata" c in
  check "analyzer rejects the loop direct-release" true
    (has_error ~check:"capacity" ~containing:"inside a loop" errs);
  let config = { Recovery.default_config with Recovery.honor_static_claims = true } in
  check "campaign convicts the mutant" true (convicted ~config c > 0)

let test_mutant_corrupt_recovery_expr () =
  (* A buggy pruning that publishes recovery expressions reading the slot
     of a clobbered (multiply-defined) register: the slot has no stable
     value, so the reconstruction is garbage. Statically: the independent
     expression re-derivation raises a recoverability error. Dynamically
     (claims honored): every rollback that consults the expression
     restores a wrong value — SDC. *)
  let c = compile_bench Turnpike.Scheme.turnpike "libquan" in
  let f = c.PP.prog.Prog.func in
  check "libquan publishes recovery expressions to corrupt" true
    (Hashtbl.length c.PP.recovery_exprs > 0);
  let def_count = Hashtbl.create 16 in
  Func.iter_blocks
    (fun b ->
      Array.iter
        (Instr.iter_defs (fun r ->
             Hashtbl.replace def_count r
               (1 + Option.value (Hashtbl.find_opt def_count r) ~default:0)))
        b.Block.body)
    f;
  let clobbered =
    Hashtbl.fold (fun r n acc -> if n > 1 then r :: acc else acc) def_count []
    |> List.sort Reg.compare |> List.hd
  in
  let victims =
    Hashtbl.fold (fun r e acc -> (r, e) :: acc) c.PP.recovery_exprs []
  in
  List.iter
    (fun (r, e) ->
      Hashtbl.replace c.PP.recovery_exprs r
        (Recovery_expr.Op (Instr.Add, e, Recovery_expr.Slot clobbered)))
    victims;
  let errs = mutant_errors ~pass:"pruning" c in
  check "analyzer rejects the clobbered-operand expression" true
    (has_error ~check:"recoverability" ~containing:"multiple definitions" errs);
  check "provenance names the buggy pass" true
    (List.for_all (fun d -> d.Diag.pass = Some "pruning") errs);
  let config = { Recovery.default_config with Recovery.honor_static_claims = true } in
  check "campaign convicts the mutant" true (convicted ~config c > 0)

(* ------------------------------------------------------------------ *)
(* Coverage: the full grid is clean and the lint report is deterministic *)

let test_full_grid_clean_and_deterministic () =
  let schemes = Turnpike.Scheme.baseline :: Turnpike.Scheme.ladder in
  let report ~jobs =
    Turnpike.Lint.run ~per_pass:true ~scale:2 ~jobs ~schemes (Suite.all ())
  in
  let rep1 = report ~jobs:1 in
  check_int "full grid covers benchmarks x ladder" (36 * 9)
    (List.length rep1.Turnpike.Lint.entries);
  check_int "zero errors across every workload and rung" 0 rep1.Turnpike.Lint.errors;
  check_int "zero warnings across every workload and rung" 0
    rep1.Turnpike.Lint.warnings;
  let rep4 = report ~jobs:4 in
  check_str "lint JSON is byte-identical at any job count"
    (Turnpike.Lint.to_json rep1) (Turnpike.Lint.to_json rep4)

(* ------------------------------------------------------------------ *)

let tests =
  [
    Alcotest.test_case "diag ordering and identity" `Quick test_diag_order_and_identity;
    Alcotest.test_case "registry fresh attribution" `Quick test_registry_fresh_attribution;
    Alcotest.test_case "wellformed rejections" `Quick test_wellformed_rejects;
    Alcotest.test_case "regions-view rejections" `Quick test_regions_view_rejects;
    Alcotest.test_case "recoverability rejections" `Quick test_recoverability_rejects;
    Alcotest.test_case "war-bypass rejections" `Quick test_war_rejects;
    Alcotest.test_case "capacity rejections" `Quick test_capacity_rejects;
    Alcotest.test_case "schedule-deps rejections" `Quick test_schedule_rejects;
    Alcotest.test_case "declared pass list single source" `Quick test_pass_list_single_source;
    Alcotest.test_case "per-pass clean on shipped workload" `Quick test_perpass_clean_on_shipped;
    Alcotest.test_case "mutant: dropped checkpoint" `Quick test_mutant_dropped_checkpoint;
    Alcotest.test_case "mutant: bogus WAR-bypass claim" `Quick test_mutant_bogus_bypass_claim;
    Alcotest.test_case "mutant: loop direct-release claim" `Quick test_mutant_loop_direct_release;
    Alcotest.test_case "mutant: corrupted recovery expression" `Quick
      test_mutant_corrupt_recovery_expr;
    Alcotest.test_case "full grid clean + deterministic lint" `Quick
      test_full_grid_clean_and_deterministic;
  ]
