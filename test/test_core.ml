(* Tests for the core library: schemes, the end-to-end run driver (and its
   trace cache), report helpers and the experiment drivers. These are the
   integration tests that tie compiler, simulator and workloads together
   and assert the paper's qualitative claims hold on this substrate. *)

module Scheme = Turnpike.Scheme
module Run = Turnpike.Run
module Report = Turnpike.Report
module E = Turnpike.Experiments
module Suite = Turnpike_workloads.Suite
module Sim_stats = Turnpike_arch.Sim_stats

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let bench name = List.hd (Suite.find_by_name name)

let small = { E.default_params with E.scale = 1; fuel = 200_000 }

(* ------------------------------------------------------------------ *)
(* Schemes *)

let test_ladder_shape () =
  check_int "eight rungs (Fig 21)" 8 (List.length Scheme.ladder);
  let first = List.hd Scheme.ladder and last = List.nth Scheme.ladder 7 in
  Alcotest.(check string) "starts at turnstile" "turnstile" first.Scheme.name;
  Alcotest.(check string) "ends at turnpike" "turnpike" last.Scheme.name;
  check "turnstile has no hw features" true
    (first.Scheme.clq = None && not first.Scheme.coloring);
  check "turnpike has everything" true
    (last.Scheme.clq <> None && last.Scheme.coloring && last.Scheme.livm
    && last.Scheme.pruning && last.Scheme.licm && last.Scheme.sched
    && last.Scheme.store_aware_ra)

let test_scheme_machine_mapping () =
  let m = Scheme.machine Scheme.turnpike ~wcdl:30 ~sb_size:8 in
  check_int "wcdl" 30 m.Scheme.Machine.wcdl;
  check_int "sb" 8 m.Scheme.Machine.sb_size;
  check "verification on" true m.Scheme.Machine.verification;
  let b = Scheme.machine Scheme.baseline ~wcdl:30 ~sb_size:8 in
  check "baseline verification off" false b.Scheme.Machine.verification

let test_compile_keys_distinguish () =
  let keys =
    List.map (fun s -> Scheme.compile_key s ~sb_size:4) (Scheme.baseline :: Scheme.ladder)
  in
  (* Schemes differing only in hardware share compile keys (same binary),
     but every distinct compiler config gets a distinct key. *)
  check "war-free-checking shares turnstile binary" true
    (Scheme.compile_key Scheme.turnstile ~sb_size:4
    = Scheme.compile_key Scheme.war_free_checking ~sb_size:4);
  check "turnpike key differs from turnstile" true
    (Scheme.compile_key Scheme.turnpike ~sb_size:4
    <> Scheme.compile_key Scheme.turnstile ~sb_size:4);
  check_int "at least 7 distinct keys" 7
    (List.length (List.sort_uniq compare keys))

(* ------------------------------------------------------------------ *)
(* Run driver *)

let p1 = { Run.default_params with Run.scale = 1 }

let test_run_baseline_sanity () =
  let r = Run.run_with p1 Scheme.baseline (bench "libquan") in
  check "cycles positive" true (r.Run.stats.Sim_stats.cycles > 0);
  check "complete" true r.Run.stats.Sim_stats.complete;
  check_int "baseline has no ckpts" 0 r.Run.stats.Sim_stats.ckpts;
  check_int "baseline has no regions" 0 r.Run.stats.Sim_stats.boundaries

let test_run_overhead_normalization () =
  let base = Run.run_with p1 Scheme.baseline (bench "libquan") in
  check "self overhead is 1" true (abs_float (Run.overhead ~baseline:base base -. 1.0) < 1e-9);
  let ov, _ = Run.normalized_with { p1 with Run.wcdl = 10 } Scheme.turnstile (bench "libquan") in
  check "turnstile overhead >= 1" true (ov >= 1.0)

let test_run_cache_consistency () =
  Run.clear_cache ();
  let a = Run.compile_with p1 Scheme.turnpike (bench "mcf") in
  let b = Run.compile_with p1 Scheme.turnpike (bench "mcf") in
  check "cache returns the same object" true (a == b);
  let c = Run.compile_with p1 Scheme.turnstile (bench "mcf") in
  check "different scheme, different compile" true (a != c)

let test_clear_cache_forces_recompile () =
  Run.clear_cache ();
  let a = Run.compile_with p1 Scheme.turnpike (bench "mcf") in
  Run.clear_cache ();
  let b = Run.compile_with p1 Scheme.turnpike (bench "mcf") in
  (* A fresh compilation produces fresh Static_stats (and a fresh pipeline
     value); a stale cache would hand back the very same objects. *)
  check "fresh compiled_run after clear" true (a != b);
  check "fresh Static_stats after clear" true
    (a.Run.compiled.Run.Pass_pipeline.stats
    != b.Run.compiled.Run.Pass_pipeline.stats);
  check "recompilation is deterministic" true
    (a.Run.compiled.Run.Pass_pipeline.stats
    = b.Run.compiled.Run.Pass_pipeline.stats)

let test_overhead_degenerate_baseline_raises () =
  (* A baseline that simulated zero cycles (empty/degenerate trace) used to
     silently report 1.0x overhead. It must raise instead. *)
  let real = Run.run_with p1 Scheme.turnpike (bench "libquan") in
  let degenerate =
    { real with Run.stats = Sim_stats.create (); scheme = "baseline" }
  in
  check_int "fabricated baseline has zero cycles" 0
    degenerate.Run.stats.Sim_stats.cycles;
  check "degenerate baseline raises" true
    (match Run.overhead ~baseline:degenerate real with
    | (_ : float) -> false
    | exception Run.Degenerate_baseline _ -> true);
  check "healthy baseline still divides" true
    (abs_float (Run.overhead ~baseline:real real -. 1.0) < 1e-9)

let test_turnpike_beats_turnstile_everywhere () =
  (* The paper's headline: Turnpike outperforms Turnstile on every
     benchmark (Fig 19 vs Fig 20). Allow half-percent simulator noise. *)
  List.iter
    (fun b ->
      let ts, _ = Run.normalized_with { p1 with Run.wcdl = 10 } Scheme.turnstile b in
      let tp, _ = Run.normalized_with { p1 with Run.wcdl = 10 } Scheme.turnpike b in
      check (Suite.qualified_name b ^ " turnpike <= turnstile") true (tp <= ts +. 0.005))
    (Suite.all ())

let test_overhead_grows_with_wcdl () =
  List.iter
    (fun name ->
      let ov w =
        fst (Run.normalized_with { p1 with Run.wcdl = w } Scheme.turnstile (bench name))
      in
      check (name ^ " monotonic-ish in wcdl") true (ov 10 <= ov 50 +. 0.005))
    [ "libquan"; "lbm"; "gcc"; "mcf" ]

let test_turnstile_improves_with_bigger_sb () =
  (* Fig 22: a larger store buffer relieves Turnstile. *)
  let ov sb =
    fst
      (Run.normalized_with
         { p1 with Run.wcdl = 10; sb_size = sb; baseline_sb = sb }
         Scheme.turnstile (bench "libquan"))
  in
  check "sb40 better than sb4" true (ov 40 <= ov 4 +. 0.005)

(* ------------------------------------------------------------------ *)
(* Report helpers *)

let test_geomean () =
  check "geomean of equal" true (abs_float (Report.geomean [ 2.0; 2.0 ] -. 2.0) < 1e-9);
  check "geomean 1,4 = 2" true (abs_float (Report.geomean [ 1.0; 4.0 ] -. 2.0) < 1e-9);
  check "empty is 0" true (Report.geomean [] = 0.0);
  check "arith mean" true (abs_float (Report.arith_mean [ 1.0; 3.0 ] -. 2.0) < 1e-9)

(* ------------------------------------------------------------------ *)
(* Experiment drivers (small windows: shape checks only) *)

let test_fig4_shape () =
  let rows = E.fig4 ~params:small () in
  check_int "29 SPEC rows" 29 (List.length rows);
  let mean f = Report.arith_mean (List.map f rows) in
  let m40 = mean (fun (r : E.fig4_row) -> r.E.ratio_sb40) in
  let m4 = mean (fun (r : E.fig4_row) -> r.E.ratio_sb4) in
  check "smaller SB means more checkpoints" true (m4 >= m40)

let test_fig18_shape () =
  let rows = E.fig18 () in
  check "latency falls with sensors" true
    (let first = List.hd rows and last = List.nth rows (List.length rows - 1) in
     last.E.dl_2_5ghz < first.E.dl_2_5ghz);
  List.iter
    (fun (r : E.fig18_row) ->
      check "faster clock, more cycles" true (r.E.dl_3_0ghz >= r.E.dl_2_0ghz))
    rows

let test_fig14_15_shape () =
  let rows = E.fig14_15 ~params:small () in
  check_int "36 rows" 36 (List.length rows);
  let g f = Report.geomean (List.map f rows) in
  let ovi = g (fun (r : E.clq_design_row) -> r.E.overhead_ideal) in
  let ovc = g (fun (r : E.clq_design_row) -> r.E.overhead_compact) in
  check "ideal CLQ never slower overall" true (ovi <= ovc +. 0.01);
  let wf_gap =
    List.exists
      (fun (r : E.clq_design_row) -> r.E.war_free_ideal > r.E.war_free_compact +. 0.01)
      rows
  in
  check "ideal detects more WAR-free somewhere (Fig 15)" true wf_gap

let test_fig21_ladder_monotonicity () =
  (* Adding optimizations never hurts the geomean. *)
  let rows = E.fig21 ~params:small () in
  check_int "36 rows" 36 (List.length rows);
  let g name =
    Report.geomean (List.map (fun (r : E.fig21_row) -> List.assoc name r.E.by_scheme) rows)
  in
  let names = List.map (fun (s : Scheme.t) -> s.Scheme.name) Scheme.ladder in
  let means = List.map g names in
  let rec pairwise = function
    | a :: (b :: _ as rest) -> (a, b) :: pairwise rest
    | _ -> []
  in
  List.iter
    (fun (a, b) -> check "ladder does not regress" true (b <= a +. 0.02))
    (pairwise means);
  check "turnstile worst, turnpike best" true
    (List.nth means 7 <= List.hd means)

let test_fig23_percentages () =
  let rows = E.fig23 ~params:small () in
  List.iter
    (fun (r : E.fig23_row) ->
      let total =
        r.E.pruned +. r.E.licm_eliminated +. r.E.colored +. r.E.war_free
        +. r.E.ra_eliminated +. r.E.ivm_eliminated +. r.E.others
      in
      check (r.E.bench ^ " categories stack to <=100%") true (total <= 100.5);
      check (r.E.bench ^ " categories non-negative") true
        (r.E.pruned >= 0.0 && r.E.others >= 0.0))
    rows

let test_fig24_clq_bounds () =
  let rows = E.fig24 ~params:small () in
  List.iter
    (fun (r : E.fig24_row) ->
      check (r.E.bench ^ " mean sane") true (r.E.mean_entries >= 0.0 && r.E.mean_entries <= 2.0);
      check (r.E.bench ^ " max within design") true (r.E.max_entries <= 2))
    rows

let test_fig26_region_sizes () =
  let rows = E.fig26 ~params:small () in
  List.iter
    (fun (r : E.fig26_row) ->
      check (r.E.bench ^ " region size positive") true (r.E.region_size > 1.0);
      check (r.E.bench ^ " region size sane") true (r.E.region_size < 64.0))
    rows

let test_table1_reproduces_paper () =
  let rows = E.table1 () in
  check_int "7 rows" 7 (List.length rows);
  let tp = List.nth rows 5 in
  check "turnpike ~10% of a 4-entry SB" true
    (tp.E.Cost_model.area_um2 > 9.0 && tp.E.Cost_model.area_um2 < 11.0)

let test_resilience_campaign_summary () =
  let rows = E.resilience_campaign ~params:small ~faults:4 () in
  check "campaign covers benchmarks" true (List.length rows >= 30);
  List.iter
    (fun (r : E.resilience_row) ->
      check_int (r.E.bench ^ " zero SDC") 0 r.E.report.E.Verifier.sdc;
      check_int (r.E.bench ^ " zero crashes") 0 r.E.report.E.Verifier.crashed)
    rows

let tests =
  [
    ("ladder shape (Fig 21 configs)", `Quick, test_ladder_shape);
    ("scheme to machine mapping", `Quick, test_scheme_machine_mapping);
    ("compile keys distinguish binaries", `Quick, test_compile_keys_distinguish);
    ("run baseline sanity", `Quick, test_run_baseline_sanity);
    ("overhead normalization", `Quick, test_run_overhead_normalization);
    ("run cache consistency", `Quick, test_run_cache_consistency);
    ("clear_cache forces recompilation", `Quick, test_clear_cache_forces_recompile);
    ("degenerate baseline raises", `Quick, test_overhead_degenerate_baseline_raises);
    ("turnpike beats turnstile everywhere", `Slow, test_turnpike_beats_turnstile_everywhere);
    ("overhead grows with WCDL", `Quick, test_overhead_grows_with_wcdl);
    ("turnstile improves with bigger SB", `Quick, test_turnstile_improves_with_bigger_sb);
    ("report means", `Quick, test_geomean);
    ("fig4 shape", `Slow, test_fig4_shape);
    ("fig18 shape", `Quick, test_fig18_shape);
    ("fig14/15 shape", `Slow, test_fig14_15_shape);
    ("fig21 ladder monotonicity", `Slow, test_fig21_ladder_monotonicity);
    ("fig23 percentages", `Slow, test_fig23_percentages);
    ("fig24 CLQ bounds", `Slow, test_fig24_clq_bounds);
    ("fig26 region sizes", `Slow, test_fig26_region_sizes);
    ("table1 reproduces paper", `Quick, test_table1_reproduces_paper);
    ("resilience campaign summary", `Slow, test_resilience_campaign_summary);
  ]
