(* Unit and property tests for the microarchitecture: caches, memory
   hierarchy, sensors, store buffer, RBB, CLQ, coloring, the cycle-level
   timing model and the cost model. *)

open Turnpike_arch
module Trace = Turnpike_ir.Trace
module Layout = Turnpike_ir.Layout

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Cache *)

let test_cache_hit_miss () =
  let c = Cache.create ~name:"t" ~size_bytes:1024 ~assoc:2 ~line_bytes:64 in
  check "cold miss" true (Cache.access c ~write:false 0 = `Miss);
  check "hit same line" true (Cache.access c ~write:false 32 = `Hit);
  check "miss other line" true (Cache.access c ~write:false 64 = `Miss);
  check_int "hits" 1 (Cache.hits c);
  check_int "misses" 2 (Cache.misses c)

let test_cache_lru_eviction () =
  (* 1024B / 2-way / 64B lines = 8 sets; addresses with the same set index
     differ by 8*64 = 512. Three conflicting lines in a 2-way set evict
     the least recently used. *)
  let c = Cache.create ~name:"t" ~size_bytes:1024 ~assoc:2 ~line_bytes:64 in
  ignore (Cache.access c ~write:false 0);
  ignore (Cache.access c ~write:false 512);
  ignore (Cache.access c ~write:false 0) (* touch 0: now 512 is LRU *);
  ignore (Cache.access c ~write:false 1024) (* evicts 512 *);
  check "0 still resident" true (Cache.access c ~write:false 0 = `Hit);
  check "512 evicted" true (Cache.access c ~write:false 512 = `Miss)

let test_cache_writeback () =
  let c = Cache.create ~name:"t" ~size_bytes:1024 ~assoc:2 ~line_bytes:64 in
  ignore (Cache.access c ~write:true 0);
  ignore (Cache.access c ~write:false 512);
  ignore (Cache.access c ~write:false 1024);
  ignore (Cache.access c ~write:false 1536);
  check "dirty line written back" true (Cache.writebacks c >= 1)

let test_cache_invalid () =
  Alcotest.check_raises "non power of two"
    (Invalid_argument "Cache: size must be a power of two") (fun () ->
      ignore (Cache.create ~name:"t" ~size_bytes:768 ~assoc:2 ~line_bytes:64))

let prop_cache_model_equivalence =
  (* The cache agrees with a naive LRU reference model on random traces. *)
  QCheck.Test.make ~name:"cache matches reference LRU model" ~count:60
    QCheck.(list_of_size (Gen.int_range 1 300) (int_range 0 50))
    (fun addrs ->
      let line_bytes = 64 and assoc = 2 and sets = 4 in
      let c =
        Cache.create ~name:"m" ~size_bytes:(line_bytes * assoc * sets) ~assoc
          ~line_bytes
      in
      (* Reference: per-set list of tags, most recent first. *)
      let model = Array.make sets [] in
      List.for_all
        (fun a ->
          let addr = a * 48 in
          let line = addr / line_bytes in
          let set = line mod sets and tag = line / sets in
          let hit_model = List.mem tag model.(set) in
          let rest = List.filter (fun t -> t <> tag) model.(set) in
          let trimmed =
            if List.length rest >= assoc then
              List.filteri (fun i _ -> i < assoc - 1) rest
            else rest
          in
          model.(set) <- tag :: trimmed;
          let hit_cache = Cache.access c ~write:false addr = `Hit in
          hit_model = hit_cache)
        addrs)

(* ------------------------------------------------------------------ *)
(* Mem hierarchy / Sensor *)

let test_hierarchy_latencies () =
  let m = Mem_hierarchy.create Mem_hierarchy.default_config in
  let cfg = Mem_hierarchy.default_config in
  let first = Mem_hierarchy.load_latency m 0x10000 in
  check_int "cold = full path" (cfg.Mem_hierarchy.l1_hit + cfg.l2_hit + cfg.mem_latency) first;
  check_int "warm = l1 hit" cfg.Mem_hierarchy.l1_hit (Mem_hierarchy.load_latency m 0x10000)

let test_hierarchy_l2_hit () =
  let m = Mem_hierarchy.create Mem_hierarchy.default_config in
  let cfg = Mem_hierarchy.default_config in
  (* Fill L1 with conflicting lines so the victim stays only in L2. L1 =
     64KB 2-way 64B -> 512 sets, stride 32KB conflicts. *)
  ignore (Mem_hierarchy.load_latency m 0);
  ignore (Mem_hierarchy.load_latency m (32 * 1024));
  ignore (Mem_hierarchy.load_latency m (64 * 1024));
  ignore (Mem_hierarchy.load_latency m (96 * 1024));
  let lat = Mem_hierarchy.load_latency m 0 in
  check_int "L2 hit" (cfg.Mem_hierarchy.l1_hit + cfg.l2_hit) lat

let test_sensor_anchor () =
  check_int "paper anchor 300@2.5GHz" 10
    (Sensor.wcdl (Sensor.create ~num_sensors:300 ~clock_ghz:2.5 ()));
  let dl30 = Sensor.wcdl (Sensor.create ~num_sensors:30 ~clock_ghz:2.5 ()) in
  check "30 sensors ~30cycles" true (dl30 >= 28 && dl30 <= 34)

let test_sensor_monotonicity () =
  let dl n = Sensor.wcdl (Sensor.create ~num_sensors:n ~clock_ghz:2.5 ()) in
  check "more sensors, lower latency" true (dl 300 < dl 100 && dl 100 < dl 30);
  let at f = Sensor.wcdl (Sensor.create ~num_sensors:100 ~clock_ghz:f ()) in
  check "faster clock, more cycles" true (at 3.0 > at 2.0)

let test_sensor_inverse () =
  let n = Sensor.sensors_for ~wcdl:10 ~clock_ghz:2.5 () in
  check "inverse achieves target" true
    (Sensor.wcdl (Sensor.create ~num_sensors:n ~clock_ghz:2.5 ()) <= 10);
  check "area overhead about 1% at 300" true
    (abs_float (Sensor.area_overhead_percent (Sensor.create ~num_sensors:300 ~clock_ghz:2.5 ()) -. 1.0) < 0.01)

let test_sensor_round_trip () =
  (* sensors_for must be a sound inverse of wcdl at every paper clock
     rate: deploying the count it returns achieves (at most) the target
     latency, for every target in 1..50. *)
  List.iter
    (fun clock_ghz ->
      for target = 1 to 50 do
        let n = Sensor.sensors_for ~wcdl:target ~clock_ghz () in
        let achieved = Sensor.wcdl (Sensor.create ~num_sensors:n ~clock_ghz ()) in
        check
          (Printf.sprintf "wcdl %d @%.1fGHz achievable with %d sensors" target
             clock_ghz n)
          true (achieved <= target)
      done)
    [ 2.0; 2.5; 3.0 ]

let prop_sensor_latency_in_range =
  QCheck.Test.make ~name:"detection latency sample in [1,wcdl]" ~count:200
    QCheck.(pair (int_range 10 300) small_nat)
    (fun (n, seed) ->
      let s = Sensor.create ~num_sensors:n ~clock_ghz:2.5 () in
      let d = Sensor.sample_detection_latency s ~seed in
      d >= 1 && d <= Sensor.wcdl s)

(* ------------------------------------------------------------------ *)
(* Store buffer *)

let test_sb_alloc_release () =
  let sb = Store_buffer.create 2 in
  check "empty not full" false (Store_buffer.is_full sb);
  Store_buffer.alloc sb ~addr:8 ~region:0 ~is_ckpt:false ~release_at:None;
  Store_buffer.alloc sb ~addr:16 ~region:0 ~is_ckpt:true ~release_at:None;
  check "now full" true (Store_buffer.is_full sb);
  check "contains addr" true (Store_buffer.contains_addr sb 8);
  check "not contains" false (Store_buffer.contains_addr sb 24);
  Alcotest.check_raises "overflow" (Invalid_argument "Store_buffer.alloc: buffer full")
    (fun () -> Store_buffer.alloc sb ~addr:24 ~region:1 ~is_ckpt:false ~release_at:None);
  let next = Store_buffer.assign_releases sb ~region:0 ~start:100 in
  check_int "drain occupies consecutive cycles" 102 next;
  let released = Store_buffer.release_up_to sb 102 in
  Alcotest.(check (list (pair int bool))) "released in order" [ (8, false); (16, true) ]
    (List.map
       (fun (r : Store_buffer.released) -> (r.Store_buffer.addr, r.Store_buffer.is_ckpt))
       released);
  Alcotest.(check (list int)) "stamped with their drain cycles" [ 100; 101 ]
    (List.map (fun (r : Store_buffer.released) -> r.Store_buffer.at) released);
  check_int "empty after release" 0 (Store_buffer.occupancy sb)

let test_sb_partial_release () =
  let sb = Store_buffer.create 4 in
  Store_buffer.alloc sb ~addr:8 ~region:0 ~is_ckpt:false ~release_at:(Some 5);
  Store_buffer.alloc sb ~addr:16 ~region:1 ~is_ckpt:false ~release_at:(Some 9);
  check_int "only first released" 1 (List.length (Store_buffer.release_up_to sb 7));
  Alcotest.(check (option int)) "earliest remaining" (Some 9) (Store_buffer.earliest_release sb)

let test_sb_unreleasable_detection () =
  let sb = Store_buffer.create 2 in
  Store_buffer.alloc sb ~addr:8 ~region:7 ~is_ckpt:false ~release_at:None;
  Store_buffer.alloc sb ~addr:16 ~region:7 ~is_ckpt:false ~release_at:None;
  check "deadlock detected" true (Store_buffer.all_unreleasable sb ~current_region:7);
  check "not deadlock for other region" false
    (Store_buffer.all_unreleasable sb ~current_region:8);
  Alcotest.(check (list int)) "unverified regions" [ 7 ] (Store_buffer.unverified_regions sb);
  (match Store_buffer.force_release_oldest sb with
  | Some (8, false) -> ()
  | _ -> Alcotest.fail "force release should pop oldest");
  check_int "one left" 1 (Store_buffer.occupancy sb)

(* ------------------------------------------------------------------ *)
(* RBB *)

let test_rbb_lifecycle () =
  let rbb = Rbb.create 2 in
  check_int "no open region" (-1) (Rbb.current_seq rbb);
  let r0 = Rbb.open_region rbb ~static_id:5 in
  check_int "seq 0" 0 r0.Rbb.seq;
  check_int "current" 0 (Rbb.current_seq rbb);
  Alcotest.check_raises "double open" (Invalid_argument "Rbb.open_region: a region is already open")
    (fun () -> ignore (Rbb.open_region rbb ~static_id:6));
  let r0' = Rbb.close_region rbb ~end_cycle:10 ~wcdl:10 in
  Alcotest.(check (option int)) "verify time" (Some 20) r0'.Rbb.verify_at;
  ignore (Rbb.open_region rbb ~static_id:6);
  check "full at capacity" true (Rbb.is_full rbb);
  Alcotest.(check (option int)) "next verify" (Some 20) (Rbb.next_verify_time rbb);
  check_int "nothing verified early" 0 (List.length (Rbb.pop_verified rbb ~cycle:19));
  let vs = Rbb.pop_verified rbb ~cycle:20 in
  check_int "one verified" 1 (List.length vs);
  Alcotest.(check (option int)) "last verified static" (Some 5) (Rbb.last_verified_static rbb);
  check "not full anymore" false (Rbb.is_full rbb)

let test_rbb_in_order_verification () =
  let rbb = Rbb.create 4 in
  ignore (Rbb.open_region rbb ~static_id:0);
  ignore (Rbb.close_region rbb ~end_cycle:5 ~wcdl:10);
  ignore (Rbb.open_region rbb ~static_id:1);
  ignore (Rbb.close_region rbb ~end_cycle:8 ~wcdl:10);
  let vs = Rbb.pop_verified rbb ~cycle:30 in
  Alcotest.(check (list int)) "verified in order" [ 0; 1 ]
    (List.map (fun (r : Rbb.region) -> r.Rbb.seq) vs)

(* ------------------------------------------------------------------ *)
(* CLQ *)

let test_clq_ideal_exact_matching () =
  let clq = Clq.create Clq.Ideal in
  ignore (Clq.record_load clq ~region:0 100);
  ignore (Clq.record_load clq ~region:0 300);
  check "exact conflict" false (Clq.war_free clq ~region:0 100);
  check "inside range but no match" true (Clq.war_free clq ~region:0 200);
  check "outside range" true (Clq.war_free clq ~region:0 400)

let test_clq_compact_range_checking () =
  let clq = Clq.create (Clq.Compact 2) in
  ignore (Clq.record_load clq ~region:0 100);
  ignore (Clq.record_load clq ~region:0 300);
  check "exact conflict" false (Clq.war_free clq ~region:0 100);
  check "false positive inside range" false (Clq.war_free clq ~region:0 200);
  check "outside range ok" true (Clq.war_free clq ~region:0 400)

let test_clq_region_isolation () =
  let clq = Clq.create (Clq.Compact 2) in
  ignore (Clq.record_load clq ~region:0 100);
  (* A different region's store is not checked against region 0's loads. *)
  check "cross region free" true (Clq.war_free clq ~region:1 100)

let test_clq_overflow_automaton () =
  let clq = Clq.create (Clq.Compact 1) in
  check "no overflow on first region" false (Clq.record_load clq ~region:0 100);
  check "enabled" true (Clq.enabled clq);
  (* A second region needs an entry: overflow disables fast release. *)
  check "overflow reported" true (Clq.record_load clq ~region:1 200);
  check "disabled after overflow" false (Clq.enabled clq);
  check "no-op while disabled" false (Clq.record_load clq ~region:1 300);
  check_int "overflow counted" 1 (Clq.overflows clq);
  check "war_free false while disabled" false (Clq.war_free clq ~region:1 999);
  (* Fig 13: re-enabled at a boundary once at most one region is pending. *)
  Clq.maybe_enable clq ~unverified_regions:3;
  check "still disabled" false (Clq.enabled clq);
  Clq.maybe_enable clq ~unverified_regions:1;
  check "re-enabled" true (Clq.enabled clq)

let test_clq_verification_clears () =
  let clq = Clq.create (Clq.Compact 2) in
  ignore (Clq.record_load clq ~region:0 100);
  ignore (Clq.record_load clq ~region:1 200);
  check_int "two entries" 2 (Clq.entries_in_use clq);
  Clq.on_region_verified clq ~region:0;
  check_int "one after verify" 1 (Clq.entries_in_use clq);
  Clq.sample clq;
  check_int "max populated" 1 (Clq.max_populated clq)

let prop_clq_compact_conservative =
  (* The compact design never calls WAR-free a store the ideal design
     would quarantine: range checking over-approximates exact matching. *)
  QCheck.Test.make ~name:"compact CLQ is conservative wrt ideal" ~count:100
    QCheck.(pair (list_of_size (Gen.int_range 1 20) (int_range 0 40)) (int_range 0 40))
    (fun (loads, store) ->
      let ideal = Clq.create Clq.Ideal and compact = Clq.create (Clq.Compact 2) in
      List.iter
        (fun a ->
          ignore (Clq.record_load ideal ~region:0 (a * 8));
          ignore (Clq.record_load compact ~region:0 (a * 8)))
        loads;
      let sa = store * 8 in
      (* compact WAR-free => ideal WAR-free *)
      (not (Clq.war_free compact ~region:0 sa)) || Clq.war_free ideal ~region:0 sa)

(* ------------------------------------------------------------------ *)
(* Coloring *)

let test_coloring_assign_and_verify () =
  let col = Coloring.create ~nregs:4 () in
  Alcotest.(check (option int)) "nothing verified" None (Coloring.verified_color col ~reg:1);
  (match Coloring.try_assign col ~reg:1 ~region:0 with
  | Some 0 -> ()
  | _ -> Alcotest.fail "first color should be 0");
  Alcotest.(check (option int)) "used color" (Some 0) (Coloring.used_color col ~reg:1 ~region:0);
  Coloring.on_region_verified col ~region:0;
  Alcotest.(check (option int)) "verified after region" (Some 0)
    (Coloring.verified_color col ~reg:1);
  (* Next assign takes a different color; verification recycles the old. *)
  (match Coloring.try_assign col ~reg:1 ~region:1 with
  | Some 1 -> ()
  | _ -> Alcotest.fail "second color should be 1");
  Coloring.on_region_verified col ~region:1;
  Alcotest.(check (option int)) "verified moves" (Some 1) (Coloring.verified_color col ~reg:1);
  (match Coloring.try_assign col ~reg:1 ~region:2 with
  | Some 0 -> () (* color 0 was recycled *)
  | _ -> Alcotest.fail "recycled color expected")

let test_coloring_pool_exhaustion () =
  let col = Coloring.create ~nregs:2 () in
  (* 4 un-verified checkpoints exhaust the pool; the 5th falls back. *)
  for region = 0 to 3 do
    match Coloring.try_assign col ~reg:1 ~region with
    | Some _ -> ()
    | None -> Alcotest.fail "pool should not be exhausted yet"
  done;
  (match Coloring.try_assign col ~reg:1 ~region:4 with
  | None -> ()
  | Some _ -> Alcotest.fail "pool should be exhausted");
  check_int "fallbacks counted" 1 (Coloring.fallbacks col);
  check_int "fast assigns counted" 4 (Coloring.fast_assigned col)

let test_coloring_discard () =
  let col = Coloring.create ~nregs:2 () in
  ignore (Coloring.try_assign col ~reg:1 ~region:0);
  ignore (Coloring.try_assign col ~reg:1 ~region:1);
  Coloring.discard_unverified col ~regions:[ 0; 1 ];
  (* All colors free again. *)
  (match Coloring.try_assign col ~reg:1 ~region:2 with
  | Some 0 -> ()
  | _ -> Alcotest.fail "colors should be free after discard")

let test_coloring_force_verified () =
  let col = Coloring.create ~nregs:2 () in
  ignore (Coloring.try_assign col ~reg:1 ~region:0);
  Coloring.on_region_verified col ~region:0;
  (* A fallback checkpoint drains into color 1: it becomes Verified and
     the old verified color 0 returns to the pool. *)
  Coloring.force_verified col ~reg:1 ~color:1;
  Alcotest.(check (option int)) "verified now 1" (Some 1) (Coloring.verified_color col ~reg:1);
  (match Coloring.try_assign col ~reg:1 ~region:5 with
  | Some 0 -> ()
  | _ -> Alcotest.fail "old verified color should be reusable")

let prop_coloring_single_verified =
  (* Under random assign/verify/discard sequences, a register never has
     two verified colors. *)
  QCheck.Test.make ~name:"coloring: at most one verified color" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 40) (int_range 0 2))
    (fun ops ->
      let col = Coloring.create ~nregs:1 () in
      let region = ref 0 in
      let pending = ref [] in
      List.iter
        (fun op ->
          match op with
          | 0 ->
            (match Coloring.try_assign col ~reg:0 ~region:!region with
            | Some _ -> pending := !region :: !pending
            | None -> ());
            incr region
          | 1 -> (
            match List.rev !pending with
            | oldest :: rest ->
              Coloring.on_region_verified col ~region:oldest;
              pending := List.rev rest
            | [] -> ())
          | _ ->
            Coloring.discard_unverified col ~regions:!pending;
            pending := [])
        ops;
      (* Count verified colors via the public API: verified_color returns
         the first; force a scan by checking try_assign invariants. *)
      match Coloring.verified_color col ~reg:0 with
      | None -> true
      | Some c ->
        (* No other color should read back as verified: temporarily
           invalidate and confirm none remains. *)
        Coloring.invalidate_verified col ~reg:0;
        ignore c;
        Coloring.verified_color col ~reg:0 = None)

(* ------------------------------------------------------------------ *)
(* Timing model on hand-built traces *)

let alu ?(dst = Some 1) ?(srcs = []) () = Trace.Alu { dst; srcs }

let simulate ?(machine = Machine.baseline) events =
  Timing.simulate machine { Trace.events = Array.of_list events; complete = true }

let test_timing_dual_issue () =
  (* 8 independent ALU ops on a 2-wide machine take ~4 cycles. *)
  let stats = simulate (List.init 8 (fun i -> alu ~dst:(Some (i + 1)) ())) in
  check "ipc close to 2" true (Sim_stats.ipc stats > 1.5);
  check_int "instructions" 8 stats.Sim_stats.instructions

let test_timing_dependent_chain () =
  (* A dependent chain serializes: one per cycle. *)
  let events =
    List.init 8 (fun i ->
        Trace.Alu { dst = Some ((i mod 2) + 1); srcs = [ ((i + 1) mod 2) + 1 ] })
  in
  let stats = simulate events in
  check "chain serializes" true (stats.Sim_stats.cycles >= 8)

let test_timing_load_latency () =
  (* A dependent use of a cold load waits for the full memory path. *)
  let cfg = Mem_hierarchy.default_config in
  let events =
    [ Trace.Load { dst = 1; srcs = []; addr = 0x5000; kind = Turnpike_ir.Instr.App_mem };
      Trace.Alu { dst = Some 2; srcs = [ 1 ] } ]
  in
  let stats = simulate events in
  let full = cfg.Mem_hierarchy.l1_hit + cfg.l2_hit + cfg.mem_latency in
  check "miss latency exposed" true (stats.Sim_stats.cycles >= full)

let test_timing_branch_prediction () =
  (* The bimodal predictor starts weakly taken: a not-taken conditional
     branch mispredicts (one redirect bubble) while a taken one doesn't. *)
  let br taken = Trace.Branch { srcs = [ 1 ]; taken; pc = 7 } in
  let mispredicted = simulate [ br false; alu () ] in
  let predicted = simulate [ br true; alu () ] in
  check "mispredict costs a bubble" true
    (mispredicted.Sim_stats.cycles > predicted.Sim_stats.cycles);
  check_int "mispredict counted" 1 mispredicted.Sim_stats.branch_mispredicts;
  check_int "predicted not counted" 0 predicted.Sim_stats.branch_mispredicts;
  (* Training: after two not-taken outcomes the counter flips and further
     not-taken branches are free. *)
  let trained = simulate [ br false; br false; br false; br false; alu () ] in
  check "training reduces mispredicts" true (trained.Sim_stats.branch_mispredicts <= 2)

let test_timing_sb_forwarding () =
  (* A load to an address quarantined in the SB forwards at L1 speed even
     when the line would miss in cache. *)
  let machine = Machine.turnstile ~wcdl:50 () in
  let addr = 0x9000 in
  let events =
    [ Trace.Boundary { region = 0 };
      Trace.Store { srcs = []; addr; cls = Trace.Regular_app };
      Trace.Load { dst = 1; srcs = []; addr; kind = Turnpike_ir.Instr.App_mem };
      Trace.Alu { dst = Some 2; srcs = [ 1 ] } ]
  in
  let stats = Timing.simulate machine { Trace.events = Array.of_list events; complete = true } in
  check_int "forwarded" 1 stats.Sim_stats.sb_forwards;
  let cfg = machine.Machine.mem in
  check "no full miss latency on the use" true
    (stats.Sim_stats.cycles < cfg.Mem_hierarchy.mem_latency)

let test_timing_store_ports () =
  (* One load and one store can issue the same cycle; two stores cannot. *)
  let two_stores =
    simulate
      [ Trace.Store { srcs = []; addr = 8; cls = Trace.Regular_app };
        Trace.Store { srcs = []; addr = 16; cls = Trace.Regular_app } ]
  in
  let load_store =
    simulate
      [ Trace.Load { dst = 1; srcs = []; addr = 8; kind = Turnpike_ir.Instr.App_mem };
        Trace.Store { srcs = []; addr = 16; cls = Trace.Regular_app } ]
  in
  check "two stores serialized" true
    (two_stores.Sim_stats.cycles > load_store.Sim_stats.cycles)

let test_timing_verification_quarantine () =
  (* Under verification, stores quarantine until region end + WCDL: with a
     4-entry SB, a 5th store in the same unfinished window stalls. *)
  let machine = Machine.turnstile ~wcdl:30 () in
  let store i = Trace.Store { srcs = []; addr = 8 * i; cls = Trace.Regular_app } in
  let boundary i = Trace.Boundary { region = i } in
  let events =
    [ boundary 0; store 1; store 2; boundary 1; store 3; store 4; boundary 2;
      store 5 ]
  in
  let stats = Timing.simulate machine { Trace.events = Array.of_list events; complete = true } in
  check "sb-full stall occurred" true (stats.Sim_stats.sb_full_stall_cycles > 0);
  check "store 5 waited about a WCDL" true (stats.Sim_stats.cycles >= 30)

let test_timing_baseline_no_quarantine () =
  let store i = Trace.Store { srcs = []; addr = 8 * i; cls = Trace.Regular_app } in
  let stats = simulate (List.init 8 (fun i -> store (i + 1))) in
  check "baseline drains freely" true (stats.Sim_stats.cycles < 20);
  check_int "no quarantine in baseline" 0 stats.Sim_stats.quarantined

let test_timing_war_free_fast_release () =
  (* WAR-free stores bypass the SB under Turnpike: no sb-full stalls even
     with many stores per region window. *)
  let machine = Machine.turnpike ~wcdl:30 () in
  let store i = Trace.Store { srcs = []; addr = 8 * i; cls = Trace.Regular_app } in
  let events =
    Trace.Boundary { region = 0 }
    :: List.concat
         (List.init 6 (fun i ->
              [ store (i + 1); Trace.Boundary { region = i + 1 } ]))
  in
  let stats = Timing.simulate machine { Trace.events = Array.of_list events; complete = true } in
  check_int "all fast released" 6 stats.Sim_stats.war_free_released;
  check_int "no stalls" 0 stats.Sim_stats.sb_full_stall_cycles

let test_timing_war_dependence_quarantines () =
  (* A store to an address the region already loaded must quarantine. *)
  let machine = Machine.turnpike ~wcdl:10 () in
  let events =
    [ Trace.Boundary { region = 0 };
      Trace.Load { dst = 1; srcs = []; addr = 64; kind = Turnpike_ir.Instr.App_mem };
      Trace.Store { srcs = [ 1 ]; addr = 64; cls = Trace.Regular_app } ]
  in
  let stats = Timing.simulate machine { Trace.events = Array.of_list events; complete = true } in
  check_int "quarantined" 1 stats.Sim_stats.quarantined;
  check_int "not fast released" 0 stats.Sim_stats.war_free_released

let test_timing_ckpt_coloring () =
  let machine = Machine.turnpike ~wcdl:10 () in
  let events =
    [ Trace.Boundary { region = 0 }; Trace.Ckpt { src = 3 };
      Trace.Boundary { region = 1 }; Trace.Ckpt { src = 3 } ]
  in
  let stats = Timing.simulate machine { Trace.events = Array.of_list events; complete = true } in
  check_int "both colored" 2 stats.Sim_stats.colored_released;
  check_int "none quarantined" 0 stats.Sim_stats.quarantined

let test_timing_ckpt_without_coloring_quarantines () =
  let machine = Machine.turnstile ~wcdl:10 () in
  let events = [ Trace.Boundary { region = 0 }; Trace.Ckpt { src = 3 } ] in
  let stats = Timing.simulate machine { Trace.events = Array.of_list events; complete = true } in
  check_int "quarantined" 1 stats.Sim_stats.quarantined;
  check_int "counted as ckpt quarantine" 1 stats.Sim_stats.ckpt_quarantined

let test_timing_strict_partitioning_raises () =
  let machine = { (Machine.turnstile ~wcdl:10 ()) with Machine.strict_partitioning = true } in
  let store i = Trace.Store { srcs = []; addr = 8 * i; cls = Trace.Regular_app } in
  let events = Trace.Boundary { region = 0 } :: List.init 5 (fun i -> store i) in
  check "raises on overfull region" true
    (try
       ignore (Timing.simulate machine { Trace.events = Array.of_list events; complete = true });
       false
     with Timing.Partitioning_violation _ -> true)

let test_timing_wcdl_monotonic () =
  (* More WCDL never makes a verified run faster. *)
  let store i = Trace.Store { srcs = []; addr = 8 * i; cls = Trace.Regular_app } in
  let events =
    Trace.Boundary { region = 0 }
    :: List.concat (List.init 10 (fun i -> [ store i; store (100 + i); Trace.Boundary { region = i + 1 } ]))
  in
  let trace = { Trace.events = Array.of_list events; complete = true } in
  let cycles w = (Timing.simulate (Machine.turnstile ~wcdl:w ()) trace).Sim_stats.cycles in
  check "monotonic in wcdl" true (cycles 10 <= cycles 30 && cycles 30 <= cycles 50)

(* ------------------------------------------------------------------ *)
(* Out-of-order comparison core *)

let ooo_simulate ?(cfg = Ooo_timing.default_config) events =
  Ooo_timing.simulate cfg { Trace.events = Array.of_list events; complete = true }

let test_ooo_hides_independent_latency () =
  (* A long-latency load overlaps independent ALU work out of order but
     serializes on the in-order core. *)
  let events =
    Trace.Load { dst = 1; srcs = []; addr = 0x7000; kind = Turnpike_ir.Instr.App_mem }
    :: List.init 20 (fun i -> alu ~dst:(Some (i + 2)) ())
    @ [ Trace.Alu { dst = Some 30; srcs = [ 1 ] } ]
  in
  let ooo = ooo_simulate events in
  (* The dependent consumer still waits for the load. *)
  let cfg = Mem_hierarchy.default_config in
  let full = cfg.Mem_hierarchy.l1_hit + cfg.l2_hit + cfg.mem_latency in
  check "dependent waits" true (ooo.Sim_stats.cycles >= full);
  check "independents overlapped" true (ooo.Sim_stats.cycles <= full + 8)

let test_ooo_window_bounds_overlap () =
  (* With a tiny reorder window the same code cannot overlap past the
     window edge. *)
  let mk rob =
    let cfg = { Ooo_timing.default_config with Ooo_timing.rob_size = rob } in
    let events =
      Trace.Load { dst = 1; srcs = []; addr = 0x7040; kind = Turnpike_ir.Instr.App_mem }
      :: List.init 30 (fun i -> alu ~dst:(Some ((i mod 20) + 2)) ())
    in
    (ooo_simulate ~cfg events).Sim_stats.cycles
  in
  check "small window is slower" true (mk 2 > mk 64)

let test_ooo_turnstile_cheap () =
  (* The motivating claim: quarantining stores behind a 40-entry SB barely
     costs anything out of order. *)
  let store i = Trace.Store { srcs = []; addr = 8 * i; cls = Trace.Regular_app } in
  let events =
    Trace.Boundary { region = 0 }
    :: List.concat
         (List.init 12 (fun i ->
              [ store i; alu ~dst:(Some 2) (); alu ~dst:(Some 3) ();
                Trace.Boundary { region = i + 1 } ]))
  in
  let base = ooo_simulate events in
  let ts = ooo_simulate ~cfg:(Ooo_timing.turnstile_config ~wcdl:30 ()) events in
  check "verification nearly free on OoO" true
    (float_of_int ts.Sim_stats.cycles /. float_of_int base.Sim_stats.cycles < 1.2);
  check "stores were quarantined" true (ts.Sim_stats.quarantined = 12)

let test_ooo_small_sb_backpressures () =
  (* Shrink the OoO core's SB to 4: the same quarantine now stalls. *)
  let store i = Trace.Store { srcs = []; addr = 8 * i; cls = Trace.Regular_app } in
  let events =
    Trace.Boundary { region = 0 }
    :: List.concat
         (List.init 12 (fun i -> [ store i; Trace.Boundary { region = i + 1 } ]))
  in
  let big = ooo_simulate ~cfg:(Ooo_timing.turnstile_config ~wcdl:50 ()) events in
  let small =
    ooo_simulate
      ~cfg:{ (Ooo_timing.turnstile_config ~wcdl:50 ()) with Ooo_timing.sb_size = 4 }
      events
  in
  check "4-entry SB stalls even out of order" true
    (small.Sim_stats.cycles > big.Sim_stats.cycles)

(* ------------------------------------------------------------------ *)
(* Cost model *)

let test_cost_model_anchors () =
  let near a b = abs_float (a -. b) < 0.01 in
  let sb4 = Cost_model.store_buffer ~entries:4 in
  check "sb4 area" true (near sb4.Cost_model.area_um2 621.28);
  check "sb4 energy" true (near sb4.Cost_model.energy_pj 0.43099);
  let sb40 = Cost_model.store_buffer ~entries:40 in
  check "sb40 area" true (near sb40.Cost_model.area_um2 3132.50);
  let cmap = Cost_model.color_maps ~nregs:32 () in
  check "color maps area" true (near cmap.Cost_model.area_um2 36.651);
  let clq = Cost_model.clq ~entries:2 in
  check "clq area" true (near clq.Cost_model.area_um2 24.434)

let test_cost_model_bytes () =
  check_int "color map bytes (paper: 24B for 32 regs)" 24 (Cost_model.color_map_bytes ~nregs:32 ());
  check_int "clq bytes (paper: 16B for 2 entries)" 16 (Cost_model.clq_bytes ~entries:2)

let test_cost_model_ratios () =
  let rows = Cost_model.table1 () in
  check_int "seven rows" 7 (List.length rows);
  let find label = List.find (fun (r : Cost_model.table1_row) -> r.Cost_model.label = label) rows in
  let tp = find "Turnpike in total / 4-entry SB [%]" in
  check "turnpike ~9.8% of SB4 area" true (abs_float (tp.Cost_model.area_um2 -. 9.8) < 0.2);
  let sb40 = find "40-entry SB / 4-entry SB [%]" in
  check "40-entry SB ~504% area" true (abs_float (sb40.Cost_model.area_um2 -. 504.2) < 1.0)

let prop_cost_monotonic =
  QCheck.Test.make ~name:"cost grows with size" ~count:50
    QCheck.(pair (int_range 1 64) (int_range 1 64))
    (fun (a, b) ->
      let small = min a b and big = max a b in
      small = big
      || (Cost_model.cam ~entries:small).Cost_model.area_um2
         <= (Cost_model.cam ~entries:big).Cost_model.area_um2)

let qcheck =
  List.map QCheck_alcotest.to_alcotest
    [ prop_cache_model_equivalence; prop_sensor_latency_in_range;
      prop_clq_compact_conservative; prop_coloring_single_verified;
      prop_cost_monotonic ]

let tests =
  [
    ("cache hit/miss", `Quick, test_cache_hit_miss);
    ("cache LRU eviction", `Quick, test_cache_lru_eviction);
    ("cache writeback", `Quick, test_cache_writeback);
    ("cache invalid size", `Quick, test_cache_invalid);
    ("hierarchy latencies", `Quick, test_hierarchy_latencies);
    ("hierarchy L2 hit", `Quick, test_hierarchy_l2_hit);
    ("sensor paper anchor", `Quick, test_sensor_anchor);
    ("sensor monotonicity", `Quick, test_sensor_monotonicity);
    ("sensor inverse/area", `Quick, test_sensor_inverse);
    ("sensor round trip wcdl<->sensors", `Quick, test_sensor_round_trip);
    ("store buffer alloc/release", `Quick, test_sb_alloc_release);
    ("store buffer partial release", `Quick, test_sb_partial_release);
    ("store buffer deadlock detection", `Quick, test_sb_unreleasable_detection);
    ("rbb lifecycle", `Quick, test_rbb_lifecycle);
    ("rbb in-order verification", `Quick, test_rbb_in_order_verification);
    ("clq ideal exact matching", `Quick, test_clq_ideal_exact_matching);
    ("clq compact range checking", `Quick, test_clq_compact_range_checking);
    ("clq region isolation", `Quick, test_clq_region_isolation);
    ("clq overflow automaton (Fig 13)", `Quick, test_clq_overflow_automaton);
    ("clq verification clears entries", `Quick, test_clq_verification_clears);
    ("coloring assign/verify/recycle", `Quick, test_coloring_assign_and_verify);
    ("coloring pool exhaustion", `Quick, test_coloring_pool_exhaustion);
    ("coloring discard on recovery", `Quick, test_coloring_discard);
    ("coloring fallback drain", `Quick, test_coloring_force_verified);
    ("timing dual issue", `Quick, test_timing_dual_issue);
    ("timing dependent chain", `Quick, test_timing_dependent_chain);
    ("timing load miss latency", `Quick, test_timing_load_latency);
    ("timing branch prediction", `Quick, test_timing_branch_prediction);
    ("timing SB store-to-load forwarding", `Quick, test_timing_sb_forwarding);
    ("timing load/store ports", `Quick, test_timing_store_ports);
    ("timing quarantine stalls (Fig 5)", `Quick, test_timing_verification_quarantine);
    ("timing baseline no quarantine", `Quick, test_timing_baseline_no_quarantine);
    ("timing WAR-free fast release", `Quick, test_timing_war_free_fast_release);
    ("timing WAR dependence quarantines", `Quick, test_timing_war_dependence_quarantines);
    ("timing checkpoint coloring", `Quick, test_timing_ckpt_coloring);
    ("timing turnstile ckpt quarantine", `Quick, test_timing_ckpt_without_coloring_quarantines);
    ("timing strict partitioning", `Quick, test_timing_strict_partitioning_raises);
    ("timing monotonic in WCDL", `Quick, test_timing_wcdl_monotonic);
    ("ooo hides independent latency", `Quick, test_ooo_hides_independent_latency);
    ("ooo window bounds overlap", `Quick, test_ooo_window_bounds_overlap);
    ("ooo turnstile nearly free", `Quick, test_ooo_turnstile_cheap);
    ("ooo small SB backpressures", `Quick, test_ooo_small_sb_backpressures);
    ("cost model paper anchors", `Quick, test_cost_model_anchors);
    ("cost model structure bytes", `Quick, test_cost_model_bytes);
    ("cost model table ratios", `Quick, test_cost_model_ratios);
  ]
  @ qcheck
