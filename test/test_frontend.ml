(* The .tk frontend: lexing/parsing diagnostics, lowering semantics,
   trace-equivalence of the examples/ ports against their template
   originals, --pipeline spec resolution, and fuzzing of the
   parse→lower→lint round trip. *)

open Turnpike_ir
module Tk = Turnpike_frontend.Tk
module Fuzz = Turnpike_frontend.Fuzz
module Srcloc = Turnpike_frontend.Srcloc
module PP = Turnpike_compiler.Pass_pipeline
module Templates = Turnpike_workloads.Templates
module Suite = Turnpike_workloads.Suite

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let compile_tk ?(scale = 1) src =
  match Tk.compile_string ~scale src with
  | Ok p -> p
  | Error e -> Alcotest.failf "unexpected frontend error: %s" e

let expect_error ?(scale = 1) src frag =
  match Tk.compile_string ~scale src with
  | Ok _ -> Alcotest.failf "expected a diagnostic containing %S" frag
  | Error e ->
    if not (contains e frag) then
      Alcotest.failf "diagnostic %S does not mention %S" e frag;
    (* every diagnostic is located: file:line:col: error: msg *)
    if not (contains e ": error: ") then
      Alcotest.failf "diagnostic %S is not in file:line:col form" e

(* Run to completion recording the ordered (address, value) store
   stream — the observable behaviour the ports must preserve. *)
let store_stream prog =
  let stores = ref [] in
  let hooks =
    {
      Interp.no_hooks with
      write_mem =
        (fun st a v ->
          stores := (a, v) :: !stores;
          Interp.set_mem st a v);
    }
  in
  let st = Interp.run ~hooks prog in
  (List.rev !stores, st)

(* Under `dune runtest' the cwd is _build/default/test; under
   `dune exec test/test_main.exe' it is the project root. *)
let example name =
  let up = Filename.concat ".." (Filename.concat "examples" name) in
  if Sys.file_exists up then up else Filename.concat "examples" name

let check_port ~file ~scale template =
  let tk_prog =
    match Tk.compile_file ~scale (example file) with
    | Ok p -> p
    | Error e -> Alcotest.failf "%s: %s" file e
  in
  let tk_stores, tk_st = store_stream tk_prog in
  let tmpl_stores, tmpl_st = store_stream template in
  Alcotest.(check bool) "template stores something" true (tmpl_stores <> []);
  Alcotest.(check (list (pair int int))) "store stream" tmpl_stores tk_stores;
  Alcotest.(check bool) "final memory" true (Interp.mem_equal tk_st tmpl_st);
  Alcotest.(check bool)
    "both complete" true
    (tk_st.Interp.halted && tmpl_st.Interp.halted)

(* ------------------------------------------------------------------ *)
(* Diagnostics: malformed input yields located errors, never raises.  *)

let test_lexer_diagnostics () =
  expect_error "kernel k { /* oops" "unterminated block comment";
  expect_error "kernel k { var x = 123abc; }" "malformed integer literal";
  expect_error "kernel k { var x = 0x; }" "malformed hexadecimal literal";
  expect_error "kernel k { var x = 0xZZ; }" "malformed integer literal";
  expect_error "kernel k { var x = 99999999999999999999999; }"
    "integer literal out of range";
  expect_error "kernel k { var x = $; }" "unexpected character";
  (* comments and hex literals lex fine *)
  let p =
    compile_tk
      "// line comment\nkernel k { /* block */ array a[1]; a[0] = 0xFF; }"
  in
  let stores, _ = store_stream p in
  Alcotest.(check (list int)) "hex literal value" [ 255 ] (List.map snd stores)

let test_parser_diagnostics () =
  expect_error "kernel k { var x = 1 }" "expected";
  expect_error "kernel k { var x = ; }" "expected an expression";
  expect_error "kernel k {" "expected";
  expect_error "kernel k { } trailing" "expected end of input";
  expect_error "kernel k { if (1) { } else 3; }" "expected";
  expect_error "module k { }" "expected"

let test_typecheck_diagnostics () =
  expect_error "kernel k { x = 1; }" "`x' is not declared";
  expect_error "kernel k { var x = 0; var x = 1; }" "already declared";
  expect_error "kernel k { const c = 1; c = 2; }" "cannot assign to a constant";
  expect_error "kernel k { array a[4]; a = 1; }" "without an index";
  expect_error "kernel k { var v = 0; v[0] = 1; }" "not an array";
  expect_error "kernel k { array a[4]; var x = a[4]; }" "out of bounds";
  expect_error "kernel k { array a[0]; }" "must be positive";
  expect_error "kernel k { var n = 4; array a[n]; }" "compile-time constant";
  expect_error "kernel k { scale = 2; }" "builtin constant";
  expect_error "kernel k { const scale = 2; }" "cannot be redeclared";
  expect_error "kernel k { if (1) { array a[4]; } }" "statically allocated";
  expect_error "kernel k { while (0) { input q = 1; } }"
    "initialised before execution"

(* ------------------------------------------------------------------ *)
(* Lowering semantics: the documented arithmetic edge cases hold both
   when constant-folded and when computed at run time.                *)

let test_semantics () =
  let src =
    {|
kernel semantics {
  const c = 6 * 7;
  array out[8];
  var z = 0;                    // defeats constant folding below
  out[0] = (7 + z) / z;         // division by zero yields 0
  out[1] = (13 + z) % z;        // remainder by zero yields 0
  out[2] = (1 << (3 + z)) - 2;  // 6
  out[3] = ((5 + z) < 9) + (5 == 5 + z) + !z;   // 1 + 1 + 1
  out[4] = ((3 + z) && z) | (z || 7 + z);       // 0 | 1
  out[5] = (-(9 + z)) >> 1;     // arithmetic shift: -5
  out[6] = c;                   // folded to 42
  out[7] = (2 + z) << 65;       // shift count masked to 6 bits: 4
}
|}
  in
  let stores, st = store_stream (compile_tk src) in
  Alcotest.(check (list int))
    "values" [ 0; 0; 6; 3; 1; -5; 42; 4 ] (List.map snd stores);
  Alcotest.(check bool) "halted" true st.Interp.halted

let test_control_flow () =
  let src =
    {|
kernel control {
  array out[4];
  var i = 0;
  var s = 0;
  while (i < 10) {
    if (i % 2 == 0) { s = s + i; } else { s = s - 1; }
    i = i + 1;
  }
  out[0] = s;                   // 0+2+4+6+8 - 5 = 15
  var j = 0;
  for (j = 0; j < 3; j = j + 1) { out[1] = out[1] + j; }
  out[2] = j;                   // 3
}
|}
  in
  let stores, _ = store_stream (compile_tk src) in
  Alcotest.(check (list int))
    "values" [ 15; 0; 1; 3; 3 ] (List.map snd stores)

let test_scale_and_inputs () =
  let src =
    {|
kernel scaled {
  const n = 2 * scale;
  input q = 5;
  array out[n];
  for (var i = 0; i < n; i = i + 1) { out[i] = q + i; }
}
|}
  in
  let stores1, _ = store_stream (compile_tk ~scale:1 src) in
  Alcotest.(check (list int)) "scale 1" [ 5; 6 ] (List.map snd stores1);
  let stores3, _ = store_stream (compile_tk ~scale:3 src) in
  Alcotest.(check (list int))
    "scale 3" [ 5; 6; 7; 8; 9; 10 ] (List.map snd stores3)

(* ------------------------------------------------------------------ *)
(* The examples/ ports are trace-equivalent to their templates.       *)

let test_port_triad () =
  check_port ~file:"triad.tk" ~scale:1 (Templates.triad ~iters:8 ());
  check_port ~file:"triad.tk" ~scale:2 (Templates.triad ~iters:16 ())

let test_port_stencil () =
  check_port ~file:"stencil.tk" ~scale:1 (Templates.stencil ~iters:8 ())

let test_port_histogram () =
  check_port ~file:"histogram.tk" ~scale:1
    (Templates.histogram ~iters:16 ~buckets:8 ())

let test_port_gather () =
  check_port ~file:"gather.tk" ~scale:1
    (Templates.gather ~iters:12 ~span:16 ())

let test_port_mixed () =
  check_port ~file:"mixed.tk" ~scale:1 (Templates.mixed ~iters:10 ())

let test_port_matmul () =
  check_port ~file:"matmul.tk" ~scale:1 (Templates.matmul ~n:4 ())

let test_port_pointer_chase () =
  check_port ~file:"pointer_chase.tk" ~scale:1
    (Templates.pointer_chase ~nodes:16 ~iters:8 ())

let test_entry_of_file () =
  (match Tk.entry_of_file (example "triad.tk") with
  | Error e -> Alcotest.failf "entry_of_file: %s" e
  | Ok e ->
    Alcotest.(check string) "name" "triad" e.Suite.name;
    Alcotest.(check bool) "tag" true (e.Suite.suite = Suite.User);
    Alcotest.(check string) "qualified" "triad@tk" (Suite.qualified_name e);
    let stores, st = store_stream (e.Suite.build ~scale:1) in
    Alcotest.(check bool) "runs" true (st.Interp.halted && stores <> []));
  match Tk.entry_of_file "no/such/file.tk" with
  | Ok _ -> Alcotest.fail "entry_of_file accepted a missing file"
  | Error e ->
    Alcotest.(check bool) "I/O error mentions path" true
      (contains e "no/such/file.tk")

(* ------------------------------------------------------------------ *)
(* --pipeline spec resolution.                                        *)

let expect_spec_error ~opts spec frag =
  match PP.resolve_pipeline ~opts spec with
  | Ok ps ->
    Alcotest.failf "spec %S resolved to [%s]; expected error about %S" spec
      (String.concat "; " ps) frag
  | Error e ->
    if not (contains e frag) then
      Alcotest.failf "spec %S: diagnostic %S does not mention %S" spec e frag

let test_pipeline_resolve () =
  let opts = PP.turnpike_opts in
  (match PP.resolve_pipeline ~opts "default" with
  | Ok ps ->
    Alcotest.(check (list string)) "default = canonical" (PP.pass_names opts) ps
  | Error e -> Alcotest.failf "default: %s" e);
  (match PP.resolve_pipeline ~opts "-licm_sink,-scheduling" with
  | Ok ps ->
    Alcotest.(check (list string))
      "removals"
      (List.filter
         (fun p -> p <> "licm_sink" && p <> "scheduling")
         (PP.pass_names opts))
      ps
  | Error e -> Alcotest.failf "removals: %s" e);
  match
    PP.resolve_pipeline ~opts
      "regalloc,partition_and_checkpoint,region_metadata"
  with
  | Ok ps ->
    Alcotest.(check (list string))
      "explicit"
      [ "regalloc"; "partition_and_checkpoint"; "region_metadata" ]
      ps
  | Error e -> Alcotest.failf "explicit: %s" e

let test_pipeline_rejects () =
  let opts = PP.turnpike_opts in
  expect_spec_error ~opts "" "empty --pipeline spec";
  expect_spec_error ~opts "nope" "unknown pass `nope'";
  expect_spec_error ~opts "-nope" "unknown pass `-nope'";
  expect_spec_error ~opts "regalloc,regalloc" "listed twice";
  expect_spec_error ~opts "-regalloc" "mandatory";
  expect_spec_error ~opts "regalloc,region_metadata" "mandatory";
  expect_spec_error ~opts "default,-livm" "cannot mix";
  expect_spec_error ~opts "regalloc,-livm" "cannot mix";
  expect_spec_error ~opts
    "regalloc,livm,partition_and_checkpoint,region_metadata"
    "must run before";
  expect_spec_error ~opts:PP.baseline_opts "regalloc,livm"
    "disabled by the current options"

let test_pipeline_compile () =
  let prog = Templates.triad ~iters:4 () in
  let opts = PP.turnpike_opts in
  (* a vetted reduced pipeline compiles and still forms regions *)
  (match PP.resolve_pipeline ~opts "-licm_sink,-scheduling" with
  | Error e -> Alcotest.failf "resolve: %s" e
  | Ok pipeline ->
    let r = PP.compile ~opts ~pipeline prog in
    Alcotest.(check bool) "regions formed" true (Array.length r.PP.regions > 0));
  (* an unvetted list raises the same diagnostic resolve would return *)
  match
    PP.compile ~opts
      ~pipeline:
        [ "regalloc"; "livm"; "partition_and_checkpoint"; "region_metadata" ]
      prog
  with
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "diagnostic carried" true
      (contains msg "must run before")
  | _ -> Alcotest.fail "compile accepted an unsound pipeline"

(* ------------------------------------------------------------------ *)
(* Fuzz: generated programs round-trip; mangled ones never raise.     *)

let test_fuzz_roundtrip () =
  for seed = 0 to 39 do
    let src = Fuzz.generate ~seed in
    Alcotest.(check string)
      "generator is deterministic" src
      (Fuzz.generate ~seed);
    match Tk.compile_string ~file:(Printf.sprintf "<fuzz-%d>" seed) ~scale:1 src with
    | Error e -> Alcotest.failf "seed %d rejected: %s\n%s" seed e src
    | Ok prog ->
      let st = Interp.run ~fuel:2_000_000 prog in
      if not st.Interp.halted then
        Alcotest.failf "seed %d did not run to completion" seed;
      let r = PP.compile ~opts:PP.turnpike_opts ~check:PP.Final prog in
      (* lint clean = nothing above Info severity *)
      (match
         List.filter
           (fun d -> d.Turnpike_analysis.Diag.severity <> Turnpike_analysis.Diag.Info)
           r.PP.diags
       with
      | [] -> ()
      | ds ->
        Alcotest.failf "seed %d lints dirty:\n%s\n%s" seed
          (String.concat "\n"
             (List.map Turnpike_analysis.Diag.to_string ds))
          src)
  done

let test_fuzz_mutations_never_raise () =
  for seed = 0 to 19 do
    let src = Fuzz.generate ~seed in
    let n = String.length src in
    let variants =
      [
        String.sub src 0 (n / 3);
        String.sub src 0 (2 * n / 3);
        String.sub src 0 (n - 2);
        src ^ "}";
        src ^ " kernel";
        "@" ^ src;
        String.map (fun c -> if c = '{' then '(' else c) src;
        String.map (fun c -> if c = ';' then ':' else c) src;
      ]
    in
    List.iteri
      (fun k s ->
        match Tk.parse_string ~file:"<mutant>" s with
        | Ok _ -> ()
        | Error err ->
          (* located, renderable error — never an exception *)
          if err.Srcloc.loc.Srcloc.start_p.Srcloc.line < 1 then
            Alcotest.failf "seed %d variant %d: unlocated error" seed k
        | exception e ->
          Alcotest.failf "seed %d variant %d: parser raised %s" seed k
            (Printexc.to_string e))
      variants
  done

let tests =
  [
    Alcotest.test_case "lexer diagnostics" `Quick test_lexer_diagnostics;
    Alcotest.test_case "parser diagnostics" `Quick test_parser_diagnostics;
    Alcotest.test_case "typecheck diagnostics" `Quick test_typecheck_diagnostics;
    Alcotest.test_case "arithmetic semantics" `Quick test_semantics;
    Alcotest.test_case "control flow" `Quick test_control_flow;
    Alcotest.test_case "scale and inputs" `Quick test_scale_and_inputs;
    Alcotest.test_case "port: triad" `Quick test_port_triad;
    Alcotest.test_case "port: stencil" `Quick test_port_stencil;
    Alcotest.test_case "port: histogram" `Quick test_port_histogram;
    Alcotest.test_case "port: gather" `Quick test_port_gather;
    Alcotest.test_case "port: mixed" `Quick test_port_mixed;
    Alcotest.test_case "port: matmul" `Quick test_port_matmul;
    Alcotest.test_case "port: pointer_chase" `Quick test_port_pointer_chase;
    Alcotest.test_case "suite entry from .tk" `Quick test_entry_of_file;
    Alcotest.test_case "pipeline: resolve" `Quick test_pipeline_resolve;
    Alcotest.test_case "pipeline: rejects" `Quick test_pipeline_rejects;
    Alcotest.test_case "pipeline: compile" `Quick test_pipeline_compile;
    Alcotest.test_case "fuzz round trip" `Quick test_fuzz_roundtrip;
    Alcotest.test_case "fuzz mutations" `Quick test_fuzz_mutations_never_raise;
  ]
