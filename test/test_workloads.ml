(* Tests for the benchmark suite: every proxy builds, validates, runs to
   completion deterministically, and exhibits the behaviour class its
   template promises. *)

open Turnpike_ir
module Suite = Turnpike_workloads.Suite
module Templates = Turnpike_workloads.Templates
module Data_gen = Turnpike_workloads.Data_gen

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_suite_has_36_entries () =
  check_int "36 benchmarks" 36 (List.length (Suite.all ()));
  check_int "16 cpu2006" 16 (List.length (Suite.of_suite Suite.Cpu2006));
  check_int "13 cpu2017" 13 (List.length (Suite.of_suite Suite.Cpu2017));
  check_int "7 splash3" 7 (List.length (Suite.of_suite Suite.Splash3))

let test_qualified_names_unique () =
  let names = List.map Suite.qualified_name (Suite.all ()) in
  check_int "unique" (List.length names) (List.length (List.sort_uniq compare names))

let test_find_duplicated_names () =
  check_int "mcf in two suites" 2 (List.length (Suite.find_by_name "mcf"));
  check_int "bwaves in two suites" 2 (List.length (Suite.find_by_name "bwaves"));
  check "find by suite works" true
    (Suite.find ~suite:Suite.Cpu2017 ~name:"mcf" <> None);
  check "absent benchmark" true (Suite.find ~suite:Suite.Splash3 ~name:"mcf" = None)

let test_all_build_and_validate () =
  List.iter
    (fun b ->
      let prog = b.Suite.build ~scale:1 in
      Alcotest.(check (list string))
        (Suite.qualified_name b ^ " validates")
        [] (Prog.validate prog))
    (Suite.all ())

let test_all_run_to_completion () =
  List.iter
    (fun b ->
      let prog = b.Suite.build ~scale:1 in
      let st = Interp.run ~fuel:2_000_000 prog in
      check (Suite.qualified_name b ^ " halts") true st.Interp.halted)
    (Suite.all ())

let test_deterministic_builds () =
  List.iter
    (fun b ->
      let s1 = Interp.run ~fuel:2_000_000 (b.Suite.build ~scale:1) in
      let s2 = Interp.run ~fuel:2_000_000 (b.Suite.build ~scale:1) in
      check (Suite.qualified_name b ^ " deterministic") true (Interp.mem_equal s1 s2))
    (Suite.all ())

let test_scale_extends_work () =
  let b = List.hd (Suite.find_by_name "libquan") in
  let t1, _ = Interp.trace_run ~fuel:2_000_000 (b.Suite.build ~scale:1) in
  let t2, _ = Interp.trace_run ~fuel:2_000_000 (b.Suite.build ~scale:2) in
  check "scale 2 executes more" true (Trace.length t2 > Trace.length t1)

let test_template_characteristics () =
  let density p =
    let t, _ = Interp.trace_run ~fuel:2_000_000 p in
    let stores = Trace.count (function Trace.Store _ -> true | _ -> false) t in
    let loads = Trace.count (function Trace.Load _ -> true | _ -> false) t in
    (float_of_int stores /. float_of_int (Trace.num_instructions t),
     float_of_int loads /. float_of_int (Trace.num_instructions t))
  in
  let s_store, _ = density (Templates.stream_store ~iters:200 ~ways:3 ()) in
  let r_store, r_load = density (Templates.reduction ~iters:200 ~accs:6 ()) in
  check "stream is store-dense" true (s_store > 0.03);
  check "reduction is store-sparse" true (r_store < 0.02);
  check "reduction is load-heavy" true (r_load > 0.07)

let test_pointer_chase_misses () =
  (* The chase footprint exceeds L1: it must produce real misses. *)
  let prog = Templates.pointer_chase ~nodes:4096 ~iters:500 () in
  let trace, _ = Interp.trace_run ~fuel:2_000_000 prog in
  let machine = Turnpike_arch.Machine.baseline in
  let stats = Turnpike_arch.Timing.simulate machine trace in
  check "l1 hit rate below streaming" true (stats.Turnpike_arch.Sim_stats.l1_hit_rate < 0.99)

let test_histogram_war_dependences () =
  (* The histogram's load-increment-store sequence produces genuine WAR
     dependences: under Turnpike many stores must quarantine. *)
  let b = List.hd (Suite.find_by_name "radix") in
  let r =
    Turnpike.Run.run_with
      { Turnpike.Run.default_params with Turnpike.Run.scale = 1; wcdl = 10 }
      Turnpike.Scheme.turnpike b
  in
  check "some stores quarantined" true (r.Turnpike.Run.stats.Turnpike_arch.Sim_stats.quarantined > 0)

let test_stream_war_free () =
  let b = List.hd (Suite.find_by_name "libquan") in
  let r =
    Turnpike.Run.run_with
      { Turnpike.Run.default_params with Turnpike.Run.scale = 1; wcdl = 10 }
      Turnpike.Scheme.turnpike b
  in
  check "stream stores fast-release" true
    (r.Turnpike.Run.stats.Turnpike_arch.Sim_stats.war_free_released > 0)

(* ------------------------------------------------------------------ *)
(* Data generator *)

let test_data_gen_determinism () =
  check_int "mix deterministic" (Data_gen.mix 3 7) (Data_gen.mix 3 7);
  check "mix varies with seed" true (Data_gen.mix 3 7 <> Data_gen.mix 4 7);
  check "mix non-negative" true (Data_gen.mix 123 456 >= 0)

let test_data_gen_bounds () =
  for i = 0 to 100 do
    let v = Data_gen.int ~seed:5 ~index:i ~bound:10 in
    check "int in bounds" true (v >= 0 && v < 10);
    let s = Data_gen.small ~seed:5 ~index:i in
    check "small in [1,97]" true (s >= 1 && s <= 97)
  done

let test_data_gen_permutation () =
  let p = Data_gen.permutation ~seed:9 64 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  check "is a permutation" true (sorted = Array.init 64 (fun i -> i))

let prop_permutation_valid =
  QCheck.Test.make ~name:"permutations are valid for any seed/size" ~count:50
    QCheck.(pair small_nat (int_range 1 200))
    (fun (seed, n) ->
      let p = Data_gen.permutation ~seed n in
      let sorted = Array.copy p in
      Array.sort compare sorted;
      sorted = Array.init n (fun i -> i))

let prop_data_int_bounds =
  QCheck.Test.make ~name:"Data_gen.int respects bounds" ~count:200
    QCheck.(triple small_nat small_nat (int_range 1 1000))
    (fun (seed, index, bound) ->
      let v = Data_gen.int ~seed ~index ~bound in
      v >= 0 && v < bound)

let qcheck =
  List.map QCheck_alcotest.to_alcotest [ prop_permutation_valid; prop_data_int_bounds ]

let tests =
  [
    ("suite has 36 entries", `Quick, test_suite_has_36_entries);
    ("qualified names unique", `Quick, test_qualified_names_unique);
    ("duplicated benchmark names", `Quick, test_find_duplicated_names);
    ("all build and validate", `Quick, test_all_build_and_validate);
    ("all run to completion", `Slow, test_all_run_to_completion);
    ("deterministic builds", `Slow, test_deterministic_builds);
    ("scale extends work", `Quick, test_scale_extends_work);
    ("template characteristics", `Quick, test_template_characteristics);
    ("pointer chase misses", `Quick, test_pointer_chase_misses);
    ("histogram WAR dependences", `Quick, test_histogram_war_dependences);
    ("stream stores WAR-free", `Quick, test_stream_war_free);
    ("data gen determinism", `Quick, test_data_gen_determinism);
    ("data gen bounds", `Quick, test_data_gen_bounds);
    ("data gen permutation", `Quick, test_data_gen_permutation);
  ]
  @ qcheck
