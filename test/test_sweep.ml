(* Tests for the sweep API and the design-space explorer: Pareto
   dominance on crafted vectors, grid construction, the shared campaign
   arg spec, determinism of the explorer at different job counts, and the
   golden-CSV guarantee that the Sweep refactor of the WCDL/CLQ figures
   did not move a byte of their output. *)

module Sweep = Turnpike.Sweep
module Pareto = Turnpike.Pareto
module DP = Turnpike.Design_point
module Explore = Turnpike.Explore
module CA = Turnpike.Campaign_args
module E = Turnpike.Experiments
module Run = Turnpike.Run
module Scheme = Turnpike.Scheme
module Parallel = Turnpike.Parallel

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Pareto dominance on crafted vectors. *)

let test_dominates () =
  check "strictly better on every axis" true
    (Pareto.dominates [| 1.0; 1.0 |] [| 2.0; 2.0 |]);
  check "better on one axis, tied on the other" true
    (Pareto.dominates [| 1.0; 2.0 |] [| 2.0; 2.0 |]);
  check "equal points do not dominate" false
    (Pareto.dominates [| 1.0; 2.0 |] [| 1.0; 2.0 |]);
  check "trade-off does not dominate" false
    (Pareto.dominates [| 1.0; 3.0 |] [| 2.0; 2.0 |]);
  check "worse never dominates" false
    (Pareto.dominates [| 2.0; 2.0 |] [| 1.0; 2.0 |]);
  check "single axis: smaller wins" true (Pareto.dominates [| 1.0 |] [| 2.0 |]);
  check "NaN axis blocks domination" false
    (Pareto.dominates [| nan; 1.0 |] [| 2.0; 2.0 |]);
  Alcotest.check_raises "length mismatch rejected"
    (Invalid_argument "Pareto.dominates: objective vectors differ in length")
    (fun () -> ignore (Pareto.dominates [| 1.0 |] [| 1.0; 2.0 |]))

let id_obj (v : float array) = v

let test_frontier () =
  (* (1,3) and (3,1) trade off; (2,2) trades off with both; (4,4) is
     dominated by all of them. *)
  let pts = [ [| 1.0; 3.0 |]; [| 4.0; 4.0 |]; [| 3.0; 1.0 |]; [| 2.0; 2.0 |] ] in
  check "frontier drops only the dominated point" true
    (Pareto.frontier ~objectives:id_obj pts
    = [ [| 1.0; 3.0 |]; [| 3.0; 1.0 |]; [| 2.0; 2.0 |] ]);
  (* Duplicates of a non-dominated point survive together (neither is
     strictly better), and input order is preserved. *)
  let dup = [ [| 1.0; 1.0 |]; [| 1.0; 1.0 |]; [| 2.0; 0.5 |] ] in
  check "equal points both kept" true
    (Pareto.frontier ~objectives:id_obj dup = dup);
  (* Single-axis domination: only the minimum survives. *)
  check "single axis keeps the minimum" true
    (Pareto.frontier ~objectives:id_obj [ [| 3.0 |]; [| 1.0 |]; [| 2.0 |] ]
    = [ [| 1.0 |] ])

let test_rank () =
  let pts = [ [| 1.0; 3.0 |]; [| 4.0; 4.0 |]; [| 3.0; 1.0 |]; [| 2.0; 2.0 |] ] in
  let layers = List.map snd (Pareto.rank ~objectives:id_obj pts) in
  check "non-dominated layer 0, dominated layer 1" true (layers = [ 0; 1; 0; 0 ]);
  let chain = [ [| 3.0 |]; [| 1.0 |]; [| 2.0 |] ] in
  check "total order peels one layer per point" true
    (List.map snd (Pareto.rank ~objectives:id_obj chain) = [ 2; 0; 1 ])

(* ------------------------------------------------------------------ *)
(* Sweep axes and design grids. *)

let test_axis () =
  Alcotest.check_raises "empty axis rejected"
    (Invalid_argument "Sweep.axis wcdl: empty value list") (fun () ->
      ignore (Sweep.ints ~name:"wcdl" []));
  let a = Sweep.ints ~name:"wcdl" [ 10; 20 ] in
  check "values kept in order" true (a.Sweep.values = [ 10; 20 ]);
  Alcotest.(check string) "int show" "20" (a.Sweep.show 20);
  check_int "wcdl figures sweep the paper's five latencies" 5
    (List.length E.wcdl_axis.Sweep.values);
  check "clq axis labels" true
    (List.map E.clq_axis.Sweep.show E.clq_axis.Sweep.values
    = [ "ideal"; "compact2" ])

let test_grid_enumeration () =
  let pts = DP.grid DP.tiny_spec in
  check_int "tiny grid size" 4 (List.length pts);
  (* Cores-major, rungs-minor: the canonical order of explorer artifacts. *)
  check "enumeration order" true
    (List.map DP.id pts
    = [
        "inorder/sb4/clq2/cb2/s300/turnstile"; "inorder/sb4/clq2/cb2/s300/turnpike";
        "ooo/sb4/clq2/cb2/s300/turnstile"; "ooo/sb4/clq2/cb2/s300/turnpike";
      ]);
  check_int "default grid size" 64 (List.length (DP.grid DP.default_spec));
  check_int "wide grid size" 486 (List.length (DP.grid DP.wide_spec));
  check "unknown grid name rejected" true
    (Result.is_error (DP.spec_of_string "nope"))

let test_design_point_lowering () =
  let p =
    {
      DP.core = DP.In_order;
      sb_entries = 8;
      clq_entries = 2;
      color_bits = 2;
      sensors = 300;
      rung = Scheme.turnpike;
    }
  in
  check_int "300 sensors at 2.5GHz is the paper's 10-cycle WCDL" 10 (DP.wcdl p);
  (match DP.machine_model p with
  | DP.Machine_model.In_order m ->
    check_int "sb" 8 m.Scheme.Machine.sb_size;
    check_int "color pool from bits" 4 m.Scheme.Machine.colors;
    check "coloring on" true m.Scheme.Machine.coloring
  | DP.Machine_model.Out_of_order _ -> Alcotest.fail "expected in-order");
  let off = DP.machine_model { p with DP.color_bits = 0 } in
  (match off with
  | DP.Machine_model.In_order m -> check "0 bits disables coloring" false m.Scheme.Machine.coloring
  | DP.Machine_model.Out_of_order _ -> Alcotest.fail "expected in-order");
  let rc = DP.recovery_config p ~fuel:1000 in
  check_int "campaign verify delay is the WCDL" 10
    rc.DP.Recovery.verify_delay;
  check "campaign coloring mirrors bits" true rc.DP.Recovery.coloring

(* ------------------------------------------------------------------ *)
(* Shared campaign arg spec. *)

let test_campaign_args () =
  let t = CA.default in
  (match CA.consume t [ "--seed"; "3"; "rest" ] with
  | Some (t', [ "rest" ]) -> check_int "seed parsed" 3 t'.CA.seed
  | _ -> Alcotest.fail "--seed not consumed");
  (match CA.consume t [ "--ci"; "0.01"; "--batch"; "8" ] with
  | Some (t', rest) ->
    check "ci parsed" true (t'.CA.ci = Some 0.01);
    (match CA.consume t' rest with
    | Some (t'', []) -> check_int "batch parsed" 8 t''.CA.batch
    | _ -> Alcotest.fail "--batch not consumed")
  | _ -> Alcotest.fail "--ci not consumed");
  check "unknown flag left to the caller" true
    (CA.consume t [ "--scale"; "4" ] = None);
  check "no stopping without --ci" true (CA.stopping t = None);
  (match CA.stopping { t with CA.ci = Some 0.02; confidence = 0.9; batch = 16 } with
  | Some s ->
    let module V = Turnpike_resilience.Verifier in
    check "half width" true (s.V.half_width = 0.02);
    check "confidence" true (s.V.confidence = 0.9);
    check_int "batch" 16 s.V.batch
  | None -> Alcotest.fail "expected a stopping rule");
  (try
     ignore (CA.consume t [ "--seed"; "x" ]);
     Alcotest.fail "malformed value accepted"
   with Failure _ -> ())

(* ------------------------------------------------------------------ *)
(* Explorer: determinism across job counts, halving shape, validation. *)

let explore_params = { Run.default_params with Run.scale = 1; fuel = 20_000 }

let run_tiny () =
  Explore.run ~seed:7 ~params:explore_params ~spec:DP.tiny_spec ()

let test_explore_deterministic_across_jobs () =
  let saved = Parallel.effective_jobs () in
  Parallel.set_default_jobs 1;
  let r1 = run_tiny () in
  Parallel.set_default_jobs 4;
  let r4 = run_tiny () in
  Parallel.set_default_jobs saved;
  check "reports identical at jobs 1 vs 4" true (r1 = r4);
  (* Byte-level: the rendered CSV artifacts match too. *)
  let render r =
    let path = Filename.temp_file "explore" ".csv" in
    Turnpike.Csv_export.explore_grid ~path r;
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove path;
    s
  in
  Alcotest.(check string) "grid CSV bytes identical" (render r1) (render r4)

let test_explore_halving_and_validation () =
  let r = run_tiny () in
  check_int "whole grid scored at the proxy rung" 4
    (List.assoc "proxy" r.Explore.evals_per_budget);
  check_int "half promoted to the mid rung" 2
    (List.assoc "mid" r.Explore.evals_per_budget);
  check_int "one full-scale evaluation" 1 r.Explore.full_scale_evals;
  check "full-scale work bounded by half the grid" true
    (2 * r.Explore.full_scale_evals <= r.Explore.grid_size);
  check "frontier is non-empty" true (r.Explore.frontier <> []);
  check "frontier points reached full scale" true
    (List.for_all (fun p -> p.Explore.full_scale) r.Explore.frontier);
  check "frontier re-validation reproduced objectives" true r.Explore.validated;
  check "sound schemes show no SDC" true
    (List.for_all
       (fun p -> p.Explore.objectives.Explore.sdc_rate = 0.0)
       r.Explore.results);
  (* Promotion is seed-stable: the same seed reproduces the whole report. *)
  check "same seed, same report" true (run_tiny () = r)

let test_explore_score_matches_batch () =
  let r = run_tiny () in
  let budget = List.nth (Explore.budgets_for explore_params) 2 in
  List.iter
    (fun p ->
      let o =
        Explore.score ~benches:(Explore.default_benches ())
          ~params:explore_params ~budget ~seed:7 p.Explore.point
      in
      check "re-scoring a frontier point is bit-identical" true
        (o = p.Explore.objectives))
    r.Explore.frontier

(* ------------------------------------------------------------------ *)
(* Golden CSVs: the Sweep refactor of fig19/fig20/fig14_15 kept their
   CSV output byte-identical to the pre-refactor capture (committed under
   test/golden, generated at scale 1, fuel 20000, jobs 1). *)

let golden_params = { Run.default_params with Run.scale = 1; fuel = 20_000 }

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* The goldens are declared as test deps (copied next to the executable
   by dune); resolve them relative to the binary so `dune exec
   test/test_main.exe` from the repo root finds them too. *)
let golden_dir =
  let candidates =
    [
      Filename.concat (Filename.dirname Sys.executable_name) "golden";
      "golden"; Filename.concat "test" "golden";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some d -> d
  | None -> "golden"

let check_golden name render rows =
  let path = Filename.temp_file name ".csv" in
  render ~path rows;
  let got = read_file path in
  Sys.remove path;
  Alcotest.(check string)
    (name ^ " CSV byte-identical to pre-refactor golden")
    (read_file (Filename.concat golden_dir (name ^ ".csv")))
    got

let test_golden_fig19 () =
  check_golden "fig19" Turnpike.Csv_export.wcdl_sweep (E.fig19 ~params:golden_params ())

let test_golden_fig20 () =
  check_golden "fig20" Turnpike.Csv_export.wcdl_sweep (E.fig20 ~params:golden_params ())

let test_golden_fig14_15 () =
  check_golden "fig14_15" Turnpike.Csv_export.fig14_15
    (E.fig14_15 ~params:golden_params ())

let tests =
  [
    Alcotest.test_case "pareto-dominates" `Quick test_dominates;
    Alcotest.test_case "pareto-frontier" `Quick test_frontier;
    Alcotest.test_case "pareto-rank" `Quick test_rank;
    Alcotest.test_case "sweep-axis" `Quick test_axis;
    Alcotest.test_case "grid-enumeration" `Quick test_grid_enumeration;
    Alcotest.test_case "design-point-lowering" `Quick test_design_point_lowering;
    Alcotest.test_case "campaign-args" `Quick test_campaign_args;
    Alcotest.test_case "explore-jobs-deterministic" `Slow
      test_explore_deterministic_across_jobs;
    Alcotest.test_case "explore-halving-validation" `Slow
      test_explore_halving_and_validation;
    Alcotest.test_case "explore-score-matches-batch" `Slow
      test_explore_score_matches_batch;
    Alcotest.test_case "golden-fig19" `Slow test_golden_fig19;
    Alcotest.test_case "golden-fig20" `Slow test_golden_fig20;
    Alcotest.test_case "golden-fig14-15" `Slow test_golden_fig14_15;
  ]
