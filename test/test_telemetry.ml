(* Tests for the telemetry subsystem: sink semantics (disabled = free,
   bounded capacity, deterministic merge), the cycle-level timeline
   (byte-identical at any --jobs count), Chrome trace-event export
   (round-trips through a real JSON parser), and the per-pass compiler
   spans (exactly one span per declared pass).

   The container has no JSON package, so the round-trip checks use the
   little recursive-descent parser below — strict enough to reject
   trailing garbage, unterminated strings and malformed escapes. *)

module Telemetry = Turnpike_telemetry
module Timeline = Turnpike.Timeline
module Run = Turnpike.Run
module Scheme = Turnpike.Scheme
module Pass_pipeline = Turnpike_compiler.Pass_pipeline
module Static_stats = Turnpike_compiler.Static_stats
module Suite = Turnpike_workloads.Suite

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Minimal strict JSON parser. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  exception Parse_error of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let skip_ws () =
      while
        !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        incr pos
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos
      else fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then (pos := !pos + l; v)
      else fail ("bad literal, wanted " ^ word)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          incr pos;
          if !pos >= n then fail "truncated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
            if !pos + 4 >= n then fail "truncated \\u escape";
            (match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
            | Some code when code < 0x80 -> Buffer.add_char b (Char.chr code)
            | Some _ -> Buffer.add_char b '?' (* non-ASCII: placeholder *)
            | None -> fail "bad \\u escape");
            pos := !pos + 4
          | _ -> fail "unknown escape");
          incr pos;
          go ()
        | c -> Buffer.add_char b c; incr pos; go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let numchar = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && numchar s.[!pos] do incr pos done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> Num f
      | None -> fail "bad number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | Some '"' -> String (parse_string ())
      | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then (incr pos; Obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos; members ((k, v) :: acc)
            | Some '}' -> incr pos; List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
      | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then (incr pos; List [])
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos; elems (v :: acc)
            | Some ']' -> incr pos; List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (elems [])
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some ('-' | '0' .. '9') -> parse_number ()
      | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
      | None -> fail "unexpected end of input"
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member k = function
    | Obj fields -> List.assoc_opt k fields
    | _ -> None

  let str_member k j =
    match member k j with Some (String s) -> Some s | _ -> None

  let num_member k j = match member k j with Some (Num f) -> Some f | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Sink semantics. *)

let test_null_sink () =
  check "null sink is disabled" false (Telemetry.enabled Telemetry.null);
  Telemetry.counter Telemetry.null ~ts:0 "occupancy" [ ("sb", Telemetry.Int 3) ];
  Telemetry.instant Telemetry.null ~ts:1 "quarantine";
  Telemetry.complete Telemetry.null ~ts:2 ~dur:5 "span";
  Telemetry.span_finish Telemetry.null ~start:(Telemetry.span_start Telemetry.null)
    "wall";
  check_int "nothing stored" 0 (Telemetry.length Telemetry.null);
  check_int "nothing dropped" 0 (Telemetry.dropped Telemetry.null);
  check "no events" true (Telemetry.events Telemetry.null = [])

let test_sink_capacity_and_seq () =
  let s = Telemetry.create ~task:3 ~capacity:2 () in
  check "created sink is enabled" true (Telemetry.enabled s);
  check_int "task key" 3 (Telemetry.task s);
  for i = 0 to 4 do
    Telemetry.instant s ~ts:i "e"
  done;
  check_int "capacity bounds storage" 2 (Telemetry.length s);
  check_int "excess counted as dropped" 3 (Telemetry.dropped s);
  let seqs = List.map (fun (e : Telemetry.event) -> e.Telemetry.seq) (Telemetry.events s) in
  check "seq is the emission index" true (seqs = [ 0; 1 ]);
  check "all events carry the sink's task" true
    (List.for_all (fun (e : Telemetry.event) -> e.Telemetry.task = 3) (Telemetry.events s))

let test_merge_orders_by_task_seq () =
  let mk task names =
    let s = Telemetry.create ~task () in
    List.iter (fun n -> Telemetry.instant s ~ts:0 n) names;
    s
  in
  let s2 = mk 2 [ "c1"; "c2" ] in
  let s0 = mk 0 [ "a1" ] in
  let s1 = mk 1 [ "b1"; "b2" ] in
  (* merge order must not depend on the order sinks are passed in *)
  let keys evs =
    List.map (fun (e : Telemetry.event) -> (e.Telemetry.task, e.Telemetry.seq, e.Telemetry.name)) evs
  in
  let m1 = keys (Telemetry.merge [ s2; s0; s1 ]) in
  let m2 = keys (Telemetry.merge [ s0; s1; s2 ]) in
  check "merge independent of sink order" true (m1 = m2);
  check "sorted by (task, seq)" true
    (m1 = [ (0, 0, "a1"); (1, 0, "b1"); (1, 1, "b2"); (2, 0, "c1"); (2, 1, "c2") ])

let test_with_span_exception_safe () =
  let s = Telemetry.create () in
  (try Telemetry.with_span s "boom" (fun () -> failwith "expected") with
  | Failure _ -> ());
  check_int "span emitted despite the exception" 1 (Telemetry.length s);
  let e = List.hd (Telemetry.events s) in
  check "span carries an error arg" true
    (List.mem_assoc "error" e.Telemetry.args)

let test_dropped_surfaced_in_exports () =
  let s = Telemetry.create ~task:0 ~capacity:2 () in
  for i = 0 to 4 do
    Telemetry.instant s ~ts:i "e"
  done;
  let events, dropped = Telemetry.merge_with_drops [ s ] in
  check_int "merge_with_drops counts overflow" 3 dropped;
  check_int "total_dropped agrees" 3 (Telemetry.total_dropped [ s ]);
  let lines =
    String.split_on_char '\n' (Telemetry.Export.jsonl ~dropped events)
    |> List.filter (fun l -> l <> "")
  in
  check_int "meta line appended" (List.length events + 1) (List.length lines);
  let meta = Json.parse (List.nth lines (List.length lines - 1)) in
  check "jsonl meta line names telemetry" true
    (Json.str_member "meta" meta = Some "telemetry");
  check "jsonl meta line carries the count" true
    (Json.num_member "dropped" meta = Some 3.);
  let chrome = Json.parse (Telemetry.Export.chrome ~dropped events) in
  check "chrome otherData carries droppedEvents" true
    (match Json.member "otherData" chrome with
    | Some o -> Json.num_member "droppedEvents" o = Some 3.
    | None -> false);
  (* Zero drops must leave both exports byte-identical to the default. *)
  check_str "zero drops leave jsonl unchanged"
    (Telemetry.Export.jsonl events)
    (Telemetry.Export.jsonl ~dropped:0 events);
  check_str "zero drops leave chrome unchanged"
    (Telemetry.Export.chrome events)
    (Telemetry.Export.chrome ~dropped:0 events)

let test_histogram () =
  let h = Telemetry.Histogram.create () in
  Telemetry.Histogram.add h "b";
  Telemetry.Histogram.add h ~by:2 "a";
  Telemetry.Histogram.add h "b";
  check_int "accumulated count" 2 (Telemetry.Histogram.count h "b");
  check_int "absent key counts zero" 0 (Telemetry.Histogram.count h "zz");
  check_int "total over bins" 4 (Telemetry.Histogram.total h);
  check "readout is key-sorted" true
    (Telemetry.Histogram.to_list h = [ ("a", 2); ("b", 2) ]);
  let h2 = Telemetry.Histogram.create () in
  Telemetry.Histogram.add h2 ~by:3 "c";
  Telemetry.Histogram.add h2 "a";
  Telemetry.Histogram.merge_into ~into:h h2;
  check "merge folds every bin" true
    (Telemetry.Histogram.to_list h = [ ("a", 3); ("b", 2); ("c", 3) ])

(* ------------------------------------------------------------------ *)
(* Timeline capture: determinism and content. *)

let small_params = { Run.default_params with Run.scale = 1 }
let libquan () = List.hd (Suite.find_by_name "libquan")

let test_timeline_jobs_invariant () =
  let t1 = Timeline.capture ~jobs:1 ~params:small_params (libquan ()) in
  let t4 = Timeline.capture ~jobs:4 ~params:small_params (libquan ()) in
  check "timeline captured events" true (List.length t1.Timeline.events > 0);
  check_int "one sink per ladder rung"
    (List.length Scheme.ladder)
    (List.length t1.Timeline.per_task);
  check_str "chrome export byte-identical at jobs 1 vs 4" (Timeline.chrome t1)
    (Timeline.chrome t4);
  check_str "jsonl export byte-identical at jobs 1 vs 4" (Timeline.jsonl t1)
    (Timeline.jsonl t4)

let test_timeline_contains_paper_events () =
  let t = Timeline.capture ~jobs:2 ~params:small_params (libquan ()) in
  let names =
    List.sort_uniq compare
      (List.map (fun (e : Telemetry.event) -> e.Telemetry.name) t.Timeline.events)
  in
  List.iter
    (fun expected ->
      check (expected ^ " events present") true (List.mem expected names))
    [ "occupancy"; "quarantine"; "release"; "verify_window"; "region" ]

let test_chrome_roundtrip () =
  let t = Timeline.capture ~jobs:1 ~params:small_params (libquan ()) in
  let json = Json.parse (Timeline.chrome t) in
  let events =
    match Json.member "traceEvents" json with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "no traceEvents array"
  in
  let phases = List.filter_map (Json.str_member "ph") events in
  check_int "every element carries a phase" (List.length events) (List.length phases);
  check "phases are the trace-event alphabet" true
    (List.for_all (fun p -> List.mem p [ "C"; "i"; "B"; "E"; "X"; "M" ]) phases);
  let data = List.filter (fun e -> Json.str_member "ph" e <> Some "M") events in
  check_int "one JSON object per captured event"
    (List.length t.Timeline.events)
    (List.length data);
  List.iter
    (fun e ->
      check "has name" true (Json.str_member "name" e <> None);
      check "has ts" true (Json.num_member "ts" e <> None);
      check "has pid" true (Json.num_member "pid" e <> None);
      if Json.str_member "ph" e = Some "X" then
        check "X spans carry a duration" true
          (match Json.num_member "dur" e with Some d -> d >= 0. | None -> false))
    data;
  (* B/E spans balance on every (pid, tid) track. *)
  let tracks = Hashtbl.create 16 in
  List.iter
    (fun e ->
      match (Json.str_member "ph" e, Json.num_member "pid" e, Json.num_member "tid" e) with
      | Some ("B" | "E"), Some pid, Some tid ->
        let key = (pid, tid) in
        let depth = Option.value (Hashtbl.find_opt tracks key) ~default:0 in
        let depth' = if Json.str_member "ph" e = Some "B" then depth + 1 else depth - 1 in
        check "E never precedes its B" true (depth' >= 0);
        Hashtbl.replace tracks key depth'
      | _ -> ())
    data;
  Hashtbl.iter (fun _ depth -> check_int "all B spans closed" 0 depth) tracks

let test_jsonl_roundtrip () =
  let s = Telemetry.create ~task:1 () in
  Telemetry.counter s ~ts:10 "occupancy" [ ("sb", Telemetry.Int 2) ];
  Telemetry.instant s ~ts:11 ~cat:"sb" "q\"uote\\and\ttab"
    ~args:[ ("f", Telemetry.Float 1.5); ("b", Telemetry.Bool true) ];
  Telemetry.complete s ~ts:12 ~dur:7 "span";
  let lines =
    String.split_on_char '\n' (Telemetry.Export.jsonl (Telemetry.events s))
    |> List.filter (fun l -> l <> "")
  in
  check_int "one line per event" 3 (List.length lines);
  let parsed = List.map Json.parse lines in
  let second = List.nth parsed 1 in
  check_str "string escaping round-trips" "q\"uote\\and\ttab"
    (Option.get (Json.str_member "name" second));
  check "float arg round-trips" true
    (match Json.member "args" second with
    | Some a -> Json.num_member "f" a = Some 1.5
    | None -> false);
  check "dur survives" true
    (Json.num_member "dur" (List.nth parsed 2) = Some 7.)

(* ------------------------------------------------------------------ *)
(* Per-pass compiler spans. *)

let test_pass_spans_match_pipeline () =
  let prog = (libquan ()).Suite.build ~scale:1 in
  List.iter
    (fun (scheme : Scheme.t) ->
      let opts = Scheme.compile_opts scheme ~sb_size:4 in
      let tel = Telemetry.create () in
      ignore (Pass_pipeline.compile ~opts ~tel prog);
      let spans =
        List.filter
          (fun (e : Telemetry.event) -> String.equal e.Telemetry.cat "compiler")
          (Telemetry.events tel)
      in
      check_str
        (scheme.Scheme.name ^ ": span names are the declared pass list")
        (String.concat "," (Pass_pipeline.pass_names opts))
        (String.concat ","
           (List.map (fun (e : Telemetry.event) -> e.Telemetry.name) spans)))
    Scheme.ladder

let test_compile_disabled_sink_untouched () =
  let prog = (libquan ()).Suite.build ~scale:1 in
  let a = Pass_pipeline.compile ~opts:Pass_pipeline.turnpike_opts prog in
  let b =
    Pass_pipeline.compile ~opts:Pass_pipeline.turnpike_opts ~tel:Telemetry.null prog
  in
  check_int "disabled telemetry does not change the compile"
    a.Pass_pipeline.stats.Static_stats.code_size
    b.Pass_pipeline.stats.Static_stats.code_size;
  check_int "null sink stayed empty" 0 (Telemetry.length Telemetry.null)

(* ------------------------------------------------------------------ *)
(* Stats JSON surfaces. *)

let test_static_stats_json () =
  let prog = (libquan ()).Suite.build ~scale:1 in
  let c = Pass_pipeline.compile ~opts:Pass_pipeline.turnpike_opts prog in
  let json = Json.parse (Static_stats.to_json c.Pass_pipeline.stats) in
  check "regions is a number" true (Json.num_member "regions" json <> None);
  check "ckpts_inserted present" true (Json.num_member "ckpts_inserted" json <> None);
  check "code_size_increase_percent present" true
    (Json.num_member "code_size_increase_percent" json <> None)

let test_static_stats_diff () =
  let prog = (libquan ()).Suite.build ~scale:1 in
  let c = Pass_pipeline.compile ~opts:Pass_pipeline.turnpike_opts prog in
  let stats = c.Pass_pipeline.stats in
  check "diff of a copy against itself is empty" true
    (Static_stats.diff ~before:(Static_stats.copy stats) ~after:stats = [])

let test_sensor_json () =
  let s = Turnpike_arch.Sensor.for_wcdl ~wcdl:10 ~clock_ghz:2.5 () in
  let json = Json.parse (Turnpike_arch.Sensor.to_json s) in
  check "wcdl recorded" true (Json.num_member "wcdl" json = Some 10.);
  check "sensor count positive" true
    (match Json.num_member "num_sensors" json with
    | Some n -> n > 0.
    | None -> false)

let tests =
  [
    ("null sink records nothing", `Quick, test_null_sink);
    ("sink capacity and seq", `Quick, test_sink_capacity_and_seq);
    ("merge orders by (task, seq)", `Quick, test_merge_orders_by_task_seq);
    ("with_span is exception-safe", `Quick, test_with_span_exception_safe);
    ("dropped counts surface in exports", `Quick, test_dropped_surfaced_in_exports);
    ("histogram semantics", `Quick, test_histogram);
    ("timeline byte-identical across --jobs", `Quick, test_timeline_jobs_invariant);
    ("timeline contains the paper's events", `Quick, test_timeline_contains_paper_events);
    ("chrome export round-trips", `Quick, test_chrome_roundtrip);
    ("jsonl export round-trips", `Quick, test_jsonl_roundtrip);
    ("per-pass spans match the pipeline", `Quick, test_pass_spans_match_pipeline);
    ("disabled sink leaves compile untouched", `Quick, test_compile_disabled_sink_untouched);
    ("static stats JSON well-formed", `Quick, test_static_stats_json);
    ("static stats diff", `Quick, test_static_stats_diff);
    ("sensor deployment JSON", `Quick, test_sensor_json);
  ]
