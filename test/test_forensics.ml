(* Tests for the fault-forensics layer: per-fault lifecycle traces
   (strike -> taint use -> detection -> rollback -> re-execution ->
   reconvergence), AVF-style vulnerability attribution, the Wilson
   trajectory counters, and the dropped-checkpoint mutant conviction —
   all byte-identical at any job count. *)

open Turnpike_ir
module Telemetry = Turnpike_telemetry
module Fault = Turnpike_resilience.Fault
module Injector = Turnpike_resilience.Injector
module Verifier = Turnpike_resilience.Verifier
module Snapshot = Turnpike_resilience.Snapshot
module Forensics = Turnpike_resilience.Forensics
module Pass_pipeline = Turnpike_compiler.Pass_pipeline
module Suite = Turnpike_workloads.Suite
module Json = Test_telemetry.Json

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let bench name = List.hd (Suite.find_by_name name)

let small_params =
  { Turnpike.Run.default_params with Turnpike.Run.scale = 1; fuel = 400_000 }

let compiled_of name =
  Turnpike.Run.compile_with small_params Turnpike.Scheme.turnpike (bench name)

let names_of sink =
  List.map (fun (e : Telemetry.event) -> e.Telemetry.name) (Telemetry.events sink)

(* ------------------------------------------------------------------ *)
(* Lifecycle traces *)

let test_lifecycle_event_order () =
  let c = compiled_of "libquan" in
  let sink = Telemetry.create () in
  let fault = Fault.single_bit ~at_step:100 ~reg:3 ~bit:5 in
  let outcome =
    Verifier.run_one ~tel:sink ~golden:c.Turnpike.Run.final
      ~compiled:c.Turnpike.Run.compiled fault
  in
  (match outcome with
  | Verifier.Recovered { detections = _ :: _; _ } -> ()
  | _ -> Alcotest.fail "expected a detected recovery");
  let names = names_of sink in
  let idx n =
    match List.find_index (String.equal n) names with
    | Some i -> i
    | None -> Alcotest.fail (n ^ " event missing")
  in
  check "strike precedes detection" true (idx "strike" < idx "detect");
  check "detection precedes rollback" true (idx "detect" < idx "rollback");
  check "rollback precedes the re-execution span" true
    (idx "rollback" < idx "reexec");
  check "re-execution precedes reconvergence" true
    (idx "reexec" < idx "reconverge");
  check "the verdict closes the stream" true
    (List.nth names (List.length names - 1) = "outcome");
  (* Every lifecycle instant carries static provenance and the dynamic
     fault-free position. *)
  List.iter
    (fun (e : Telemetry.event) ->
      if e.Telemetry.name <> "outcome" && e.Telemetry.name <> "reexec" then begin
        check (e.Telemetry.name ^ " carries func") true
          (List.mem_assoc "func" e.Telemetry.args);
        check (e.Telemetry.name ^ " carries block") true
          (List.mem_assoc "block" e.Telemetry.args);
        check (e.Telemetry.name ^ " carries index") true
          (List.mem_assoc "index" e.Telemetry.args);
        check (e.Telemetry.name ^ " carries pos") true
          (List.mem_assoc "pos" e.Telemetry.args)
      end;
      check (e.Telemetry.name ^ " in the forensics category") true
        (e.Telemetry.cat = "forensics" || e.Telemetry.name = "outcome"))
    (Telemetry.events sink);
  let r = Forensics.record_of ~index:0 ~fault ~outcome sink in
  check "record classifies as detected" true (r.Forensics.clazz = Forensics.Detected);
  check "record distilled a strike site" true (r.Forensics.site <> None);
  check "record distilled the detection kind" true
    (match r.Forensics.detect_kind with
    | Some ("sensor" | "parity") -> true
    | _ -> false);
  check "detection latency is non-negative" true
    (match r.Forensics.detect_latency with Some l -> l >= 0 | None -> false);
  check "rewind is positive" true
    (match r.Forensics.rewind with Some w -> w > 0 | None -> false)

let test_masked_fault_has_no_lifecycle () =
  (* A strike scheduled far past program exit never lands: no lifecycle
     events except the verdict, classified as masked. *)
  let c = compiled_of "libquan" in
  let sink = Telemetry.create () in
  let fault = Fault.single_bit ~at_step:100_000_000 ~reg:3 ~bit:5 in
  let outcome =
    Verifier.run_one ~tel:sink ~golden:c.Turnpike.Run.final
      ~compiled:c.Turnpike.Run.compiled fault
  in
  check "outcome is an undetected recovery" true
    (match outcome with
    | Verifier.Recovered { detections = []; _ } -> true
    | _ -> false);
  check "only the verdict was emitted" true (names_of sink = [ "outcome" ]);
  let r = Forensics.record_of ~index:0 ~fault ~outcome sink in
  check "classified masked" true (r.Forensics.clazz = Forensics.Masked);
  check "no strike site" true (r.Forensics.site = None);
  check "no region" true (r.Forensics.region = None)

(* ------------------------------------------------------------------ *)
(* Attribution math *)

let test_classify_and_vulnerability () =
  let recovered detections =
    Verifier.Recovered { detections; reexec_overhead = 0.0 }
  in
  check "no detection = masked" true
    (Forensics.classify (recovered []) = Forensics.Masked);
  check "detected recovery" true
    (Forensics.classify (recovered [ Turnpike_resilience.Recovery.Sensor ])
    = Forensics.Detected);
  check "crash class" true
    (Forensics.classify (Verifier.Crashed { reason = "x" }) = Forensics.Crashed);
  let c = { Forensics.masked = 1; detected = 5; sdc = 3; crashed = 1 } in
  check_int "total" 10 (Forensics.counts_total c);
  check_int "failures derate masked and detected" 4 (Forensics.failures c);
  check "vulnerability = failures/total" true
    (Float.abs (Forensics.vulnerability c -. 0.4) < 1e-9);
  check "empty bin has zero vulnerability" true
    (Forensics.vulnerability Forensics.zero_counts = 0.0)

(* ------------------------------------------------------------------ *)
(* Campaign determinism *)

let test_campaign_jobs_invariant () =
  let c = compiled_of "libquan" in
  let compiled = c.Turnpike.Run.compiled in
  let golden = c.Turnpike.Run.final in
  let faults = Injector.campaign ~seed:9 ~count:24 c.Turnpike.Run.trace in
  let r1, rep1 = Forensics.campaign ~jobs:1 ~golden ~compiled faults in
  let r4, rep4 = Forensics.campaign ~jobs:4 ~golden ~compiled faults in
  check "campaign reports identical at jobs 1 and 4" true (rep1 = rep4);
  check "records identical at jobs 1 and 4" true (r1 = r4);
  check_str "merged event stream byte-identical at jobs 1 and 4"
    (Telemetry.Export.jsonl (Forensics.merged_events r1))
    (Telemetry.Export.jsonl (Forensics.merged_events r4));
  check "summaries identical" true
    (Forensics.summarize ~rung:"turnpike" r1
    = Forensics.summarize ~rung:"turnpike" r4);
  let s = Forensics.summarize r1 in
  check_int "one record per fault" (List.length faults) s.Forensics.total;
  check_int "class counts partition the campaign" (List.length faults)
    (Forensics.counts_total s.Forensics.by_class);
  check_int "register table covers every fault" (List.length faults)
    (List.fold_left
       (fun acc (row : Forensics.row) ->
         acc + Forensics.counts_total row.Forensics.counts)
       0 s.Forensics.by_register)

let test_wilson_trajectory_jobs_invariant () =
  let c = compiled_of "libquan" in
  let compiled = c.Turnpike.Run.compiled in
  let golden = c.Turnpike.Run.final in
  let faults = Injector.campaign ~seed:5 ~count:200 c.Turnpike.Run.trace in
  let plan = Snapshot.record compiled in
  let stopping =
    { Verifier.half_width = 0.05; confidence = 0.95; batch = 16; min_faults = 32 }
  in
  let run jobs =
    let traj = Telemetry.create ~task:(List.length faults) () in
    let records, ci =
      Forensics.campaign_ci ~jobs ~plan ~stopping ~tel:traj ~golden ~compiled
        faults
    in
    (records, ci, Telemetry.events traj)
  in
  let r1, ci1, t1 = run 1 in
  let r4, ci4, t4 = run 4 in
  check "ci reports identical at jobs 1 and 4" true (ci1 = ci4);
  check "records identical at jobs 1 and 4" true (r1 = r4);
  check_str "trajectory bytes identical at jobs 1 and 4"
    (Telemetry.Export.jsonl t1) (Telemetry.Export.jsonl t4);
  check_int "one counter per consumed batch" ci1.Verifier.batches
    (List.length t1);
  check_int "records cover exactly the consumed prefix"
    ci1.Verifier.report.Verifier.total (List.length r1);
  (* The last trajectory sample is the final report. *)
  let last = List.nth t1 (List.length t1 - 1) in
  check "final sample consumed the whole campaign" true
    (List.assoc_opt "consumed" last.Telemetry.args
    = Some (Telemetry.Int ci1.Verifier.report.Verifier.total));
  check "trajectory samples are wilson counters" true
    (List.for_all
       (fun (e : Telemetry.event) ->
         e.Telemetry.name = "wilson_trajectory"
         && List.mem_assoc "ci_low" e.Telemetry.args
         && List.mem_assoc "ci_high" e.Telemetry.args
         && List.mem_assoc "half_width" e.Telemetry.args)
       t1)

(* ------------------------------------------------------------------ *)
(* Mutant conviction *)

let test_mutant_conviction () =
  (* Ground truth: drop every checkpoint of one recoverable live-in, then
     check the campaign's region attribution ranks an affected region
     first — localization, not just detection. *)
  let prog = (bench "mcf").Suite.build ~scale:2 in
  let opts = Turnpike.Scheme.compile_opts Turnpike.Scheme.turnstile ~sb_size:4 in
  let c = Pass_pipeline.compile ~opts prog in
  match Forensics.drop_checkpoint_mutant c with
  | None -> Alcotest.fail "expected a checkpointed live-in victim"
  | Some (m, victim, affected) ->
    check "victim register is not zero" false (Reg.is_zero victim);
    check "the victim flows into at least one region" true (affected <> []);
    let trace, golden = Interp.trace_run ~fuel:400_000 m.Pass_pipeline.prog in
    check "mutant trace complete" true trace.Trace.complete;
    let faults = Injector.campaign ~seed:11 ~count:40 trace in
    let records, rep = Forensics.campaign ~golden ~compiled:m faults in
    check "campaign convicts the mutant dynamically" true
      (rep.Verifier.sdc + rep.Verifier.crashed > 0);
    let s = Forensics.summarize ~rung:"turnstile+drop-ckpt" records in
    check_int "summary failures match the report"
      (rep.Verifier.sdc + rep.Verifier.crashed)
      (Forensics.failures s.Forensics.by_class);
    (match s.Forensics.by_region with
    | top :: _ ->
      check "top-ranked region is a ground-truth victim region" true
        (List.mem top.Forensics.key (List.map string_of_int affected))
    | [] -> Alcotest.fail "no region attribution")

(* ------------------------------------------------------------------ *)
(* Serialization *)

let test_json_well_formed () =
  let c = compiled_of "libquan" in
  let faults = Injector.campaign ~seed:3 ~count:8 c.Turnpike.Run.trace in
  let records, _ =
    Forensics.campaign ~golden:c.Turnpike.Run.final
      ~compiled:c.Turnpike.Run.compiled faults
  in
  List.iter
    (fun r ->
      let j = Json.parse (Forensics.record_to_json r) in
      check "record carries a class" true
        (Json.str_member "class" j
        = Some (Forensics.clazz_name r.Forensics.clazz));
      check "record embeds the fault draw" true
        (match Json.member "fault" j with
        | Some f ->
          Json.str_member "reg" f <> None && Json.num_member "at_step" f <> None
        | None -> false);
      check "record embeds the verdict" true
        (match Json.member "outcome" j with
        | Some o -> Json.str_member "class" o <> None
        | None -> false))
    records;
  let s = Forensics.summarize ~rung:"turnpike" records in
  let j = Json.parse (Forensics.summary_to_json s) in
  check "summary total round-trips" true (Json.num_member "total" j = Some 8.);
  check "summary names its rung" true (Json.str_member "rung" j = Some "turnpike");
  List.iter
    (fun key ->
      check (key ^ " is a ranked table") true
        (match Json.member key j with
        | Some (Json.List rows) ->
          List.for_all
            (fun row ->
              Json.str_member "key" row <> None
              && Json.num_member "vulnerability" row <> None)
            rows
        | _ -> false))
    [ "by_site"; "by_register"; "by_region" ];
  check "fault JSON parses standalone" true
    (match Json.parse (Fault.to_json (List.hd faults)) with
    | Json.Obj _ -> true
    | _ -> false)

let tests =
  [
    ("lifecycle event order", `Quick, test_lifecycle_event_order);
    ("masked fault has no lifecycle", `Quick, test_masked_fault_has_no_lifecycle);
    ("classify and vulnerability math", `Quick, test_classify_and_vulnerability);
    ("campaign byte-identical across --jobs", `Quick, test_campaign_jobs_invariant);
    ( "wilson trajectory byte-identical across --jobs",
      `Slow,
      test_wilson_trajectory_jobs_invariant );
    ("drop-ckpt mutant convicted by region ranking", `Slow, test_mutant_conviction);
    ("record and summary JSON well-formed", `Quick, test_json_well_formed);
  ]
