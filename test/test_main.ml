let () =
  Alcotest.run "turnpike"
    [
      ("ir", Test_ir.tests);
      ("ir-internals", Test_ir_internals.tests);
      ("arch", Test_arch.tests);
      ("compiler", Test_compiler.tests);
      ("analysis", Test_analysis.tests);
      ("recovery-codegen", Test_recovery_codegen.tests);
      ("resilience", Test_resilience.tests);
      ("forensics", Test_forensics.tests);
      ("vuln", Test_vuln.tests);
      ("workloads", Test_workloads.tests);
      ("frontend", Test_frontend.tests);
      ("core", Test_core.tests);
      ("sweep", Test_sweep.tests);
      ("parallel", Test_parallel.tests);
      ("telemetry", Test_telemetry.tests);
      ("api", Test_api_surface.tests);
    ]
