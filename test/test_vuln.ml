(* Tests for the static ACE/AVF vulnerability analysis: the shared
   ranking tie-break and rank-correlation statistics, the registry
   wiring, the static drop-ckpt mutant conviction (mirroring PR 8's
   dynamic conviction), the static-vs-dynamic agreement acceptance
   criterion over the whole suite, and the explorer's zero-campaign
   static rung. *)

open Turnpike_ir
module Analysis = Turnpike_analysis
module Rank = Turnpike_analysis.Rank
module Vuln = Turnpike_analysis.Vuln
module Forensics = Turnpike_resilience.Forensics
module Injector = Turnpike_resilience.Injector
module Verifier = Turnpike_resilience.Verifier
module Snapshot = Turnpike_resilience.Snapshot
module Pass_pipeline = Turnpike_compiler.Pass_pipeline
module Suite = Turnpike_workloads.Suite

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let checkf = Alcotest.(check (float 1e-5))

let bench name = List.hd (Suite.find_by_name name)

(* ------------------------------------------------------------------ *)
(* The shared comparator *)

let test_key_compare () =
  let lt a b = check (a ^ " < " ^ b) true (Rank.key_compare a b < 0) in
  lt "b2:9" "b2:10";
  lt "r2" "r10";
  lt "3" "21";
  lt "9" "10";
  lt "alpha" "beta";
  check_int "equal keys" 0 (Rank.key_compare "r7" "r7");
  check "antisymmetric" true (Rank.key_compare "r10" "r2" > 0);
  (* leading zeros: same value, still a total order *)
  check "07 and 7 are ordered, not equal" true (Rank.key_compare "07" "7" <> 0);
  let sorted = List.sort Rank.key_compare [ "r10"; "r2"; "b:10"; "b:9" ] in
  check "natural sort" true (sorted = [ "b:9"; "b:10"; "r2"; "r10" ])

let test_shared_tie_break () =
  (* Equal-score rows must come out in the same key order from the
     dynamic and the static table sorters. *)
  let keys = [ "r10"; "b:10"; "r2"; "b:9"; "12"; "3" ] in
  let c0 = { Forensics.masked = 1; detected = 0; sdc = 0; crashed = 0 } in
  let dyn =
    Forensics.rank
      (List.map (fun key -> { Forensics.key; counts = c0 }) keys)
    |> List.map (fun (r : Forensics.row) -> r.Forensics.key)
  in
  let sta =
    Vuln.rank
      (List.map
         (fun key -> { Vuln.key; exposure = 1.0; score = 0.5 })
         keys)
    |> List.map (fun (r : Vuln.row) -> r.Vuln.key)
  in
  check "one tie-break for dynamic and static tables" true (dyn = sta);
  check "and it is the natural key order" true
    (dyn = List.sort Rank.key_compare keys)

(* ------------------------------------------------------------------ *)
(* Rank correlation *)

let test_spearman_hand_computed () =
  checkf "perfect agreement" 1.0
    (Rank.spearman [| 1.; 2.; 3.; 4. |] [| 10.; 20.; 30.; 40. |]);
  checkf "perfect reversal" (-1.0)
    (Rank.spearman [| 1.; 2.; 3.; 4. |] [| 4.; 3.; 2.; 1. |]);
  (* Ties: a = [1;2;2;4] has ranks [1;2.5;2.5;4]; against [1;2;3;4] the
     Pearson correlation of the rank vectors is 4.5/sqrt(4.5*5). *)
  checkf "tie-averaged ranks" 0.9486833
    (Rank.spearman [| 1.; 2.; 2.; 4. |] [| 1.; 2.; 3.; 4. |]);
  checkf "both constant" 1.0 (Rank.spearman [| 5.; 5. |] [| 7.; 7. |]);
  checkf "one constant" 0.0 (Rank.spearman [| 5.; 5. |] [| 1.; 2. |]);
  checkf "empty vectors" 1.0 (Rank.spearman [||] [||]);
  Alcotest.check_raises "length mismatch raises"
    (Invalid_argument "Rank.spearman: length mismatch") (fun () ->
      ignore (Rank.spearman [| 1. |] [| 1.; 2. |]))

let test_top_k_overlap_edges () =
  check "k larger than both lists clamps" true
    (Rank.top_k_overlap ~k:10 [ "a"; "b" ] [ "b"; "a" ] = (2, 2));
  check "empty lists" true (Rank.top_k_overlap ~k:5 [] [ "a" ] = (0, 0));
  check "k = 0" true (Rank.top_k_overlap ~k:0 [ "a" ] [ "a" ] = (0, 0));
  check "disjoint" true
    (Rank.top_k_overlap ~k:2 [ "a"; "b" ] [ "c"; "d" ] = (0, 2));
  check "partial" true
    (Rank.top_k_overlap ~k:2 [ "a"; "b"; "c" ] [ "b"; "d"; "a" ] = (1, 2))

let test_agreement_restricts_to_common_keys () =
  (* "z" only dynamic, "q" only static: both drop out before scoring. *)
  let rho, (hits, denom) =
    Rank.agreement ~k:3 [ "a"; "q"; "b"; "c" ] [ "a"; "b"; "z"; "c" ]
  in
  checkf "identical order on the intersection" 1.0 rho;
  check_int "all common keys in both top-k" 3 hits;
  check_int "denominator is the common-key count" 3 denom;
  let rho_rev, _ = Rank.agreement ~k:3 [ "a"; "b"; "c" ] [ "c"; "b"; "a" ] in
  checkf "reversal on the intersection" (-1.0) rho_rev;
  check "no common keys" true (Rank.agreement ~k:3 [ "a" ] [ "b" ] = (1.0, (0, 0)))

(* ------------------------------------------------------------------ *)
(* The analysis itself *)

let vuln_of ?(wcdl = 10) scheme name ~scale =
  let prog = (bench name).Suite.build ~scale in
  let opts = Turnpike.Scheme.compile_opts scheme ~sb_size:4 in
  let compiled = Pass_pipeline.compile ~opts prog in
  ( compiled,
    Vuln.compute
      (Analysis.Context.with_machine ~wcdl
         (Pass_pipeline.analysis_context compiled)) )

let test_compute_sanity () =
  let compiled, v = vuln_of Turnpike.Scheme.turnpike "mcf" ~scale:2 in
  check "regions ranked" true (v.Vuln.by_region <> []);
  check "registers ranked" true (v.Vuln.by_register <> []);
  check "sites ranked" true (v.Vuln.by_site <> []);
  check "windows computed" true (v.Vuln.windows <> []);
  check "positive mass" true (v.Vuln.total_mass > 0.0);
  check "predicted AVF positive" true (v.Vuln.predicted_avf > 0.0);
  check "clean build has no coverage gaps" true (v.Vuln.gaps = []);
  check_int "one row per region" (Array.length compiled.Pass_pipeline.regions)
    (List.length v.Vuln.by_region);
  (* tables come out ranked *)
  check "region table is ranked" true
    (Vuln.rank v.Vuln.by_region = v.Vuln.by_region);
  (* baseline (no regions) is empty *)
  let _, b = vuln_of Turnpike.Scheme.baseline "mcf" ~scale:2 in
  check "baseline has no vulnerability tables" true (b = Vuln.empty);
  (* weighted_size works without regions *)
  let prog = (bench "mcf").Suite.build ~scale:2 in
  let opts = Turnpike.Scheme.compile_opts Turnpike.Scheme.baseline ~sb_size:4 in
  let base = Pass_pipeline.compile ~opts prog in
  check "weighted size is positive for the baseline" true
    (Vuln.weighted_size (Pass_pipeline.analysis_context base) > 0.0)

let test_wcdl_raises_escape () =
  (* A slower detector (larger WCDL) leaves wider escape windows: the
     predicted AVF must be monotone in the configured latency — this is
     what lets the explorer's static rung separate sensor deployments. *)
  let _, fast = vuln_of ~wcdl:2 Turnpike.Scheme.turnpike "mcf" ~scale:2 in
  let _, slow = vuln_of ~wcdl:100 Turnpike.Scheme.turnpike "mcf" ~scale:2 in
  check "larger WCDL, larger predicted AVF" true
    (slow.Vuln.predicted_avf > fast.Vuln.predicted_avf)

let test_registry_has_vuln () =
  check "vuln is a registered whole check" true
    (List.mem Vuln.name Analysis.Registry.names);
  let reads = Analysis.Registry.reads_of Vuln.name in
  check "declares the machine-params facet" true
    (Analysis.Facet.Set.mem Analysis.Facet.Machine_params reads);
  check "declares the claims facet" true
    (Analysis.Facet.Set.mem Analysis.Facet.Claims reads);
  check "declares boundary reads" true
    (Analysis.Facet.Set.mem Analysis.Facet.Boundaries reads)

let test_static_mutant_conviction () =
  (* Mirror of PR 8's dynamic conviction, with zero faults: dropping the
     checkpoints of a recoverable live-in must RAISE the static score of
     exactly the regions that lost coverage, and push one of them to the
     top of the static ranking. *)
  let prog = (bench "mcf").Suite.build ~scale:2 in
  let opts = Turnpike.Scheme.compile_opts Turnpike.Scheme.turnstile ~sb_size:4 in
  let c = Pass_pipeline.compile ~opts prog in
  (* force the "before" tables before the mutant rewrites blocks in place *)
  let before =
    Vuln.compute
      (Analysis.Context.with_machine ~wcdl:10 (Pass_pipeline.analysis_context c))
  in
  check "clean binary has no gaps" true (before.Vuln.gaps = []);
  match Forensics.drop_checkpoint_mutant c with
  | None -> Alcotest.fail "expected a checkpointed live-in victim"
  | Some (m, victim, affected) ->
    let after =
      Vuln.compute
        (Analysis.Context.with_machine ~wcdl:10
           (Pass_pipeline.analysis_context m))
    in
    check "mutant opens coverage gaps" true (after.Vuln.gaps <> []);
    check "every gap names the victim register" true
      (List.for_all (fun (_, _, r) -> Reg.equal r victim) after.Vuln.gaps);
    check "gap regions are the ground-truth affected set" true
      (List.for_all
         (fun (rid, _, _) -> List.mem rid affected)
         after.Vuln.gaps);
    let score_of (v : Vuln.t) rid =
      match
        List.find_opt
          (fun (r : Vuln.row) -> r.Vuln.key = string_of_int rid)
          v.Vuln.by_region
      with
      | Some r -> r.Vuln.score
      | None -> 0.0
    in
    List.iter
      (fun rid ->
        check
          (Printf.sprintf "region %d static score raised by the mutant" rid)
          true
          (score_of after rid > score_of before rid))
      affected;
    (match after.Vuln.by_region with
    | top :: _ ->
      check "top-ranked static region is a victim region" true
        (List.mem top.Vuln.key (List.map string_of_int affected))
    | [] -> Alcotest.fail "no static region table");
    let reg_score (v : Vuln.t) =
      match
        List.find_opt
          (fun (r : Vuln.row) -> r.Vuln.key = Reg.to_string victim)
          v.Vuln.by_register
      with
      | Some r -> r.Vuln.score
      | None -> 0.0
    in
    check "victim register's static score raised by the mutant" true
      (reg_score after > reg_score before);
    check "mutant raises the predicted AVF" true
      (after.Vuln.predicted_avf > before.Vuln.predicted_avf)

let test_vuln_report_jobs_invariant () =
  let benches = [ bench "mcf" ] in
  let schemes = [ Turnpike.Scheme.turnstile; Turnpike.Scheme.turnpike ] in
  let r1 = Turnpike.Lint.run_vuln ~scale:2 ~jobs:1 ~schemes benches in
  let r4 = Turnpike.Lint.run_vuln ~scale:2 ~jobs:4 ~schemes benches in
  check_str "vuln json identical at jobs 1 and 4"
    (Turnpike.Lint.vuln_to_json r1)
    (Turnpike.Lint.vuln_to_json r4);
  check_str "vuln text identical at jobs 1 and 4"
    (Turnpike.Lint.vuln_to_text r1)
    (Turnpike.Lint.vuln_to_text r4)

let test_vuln_csv_missing_columns () =
  (* The writers reuse the sweep exports' missing-column tolerance: a
     key one scheme never ranks renders "nan", never loses the file. *)
  let rows =
    [
      { Turnpike.Lint.vr_benchmark = "b1"; vr_key = "0";
        vr_by_scheme = [ ("alpha", 1.0); ("beta", 2.0) ] };
      { Turnpike.Lint.vr_benchmark = "b1"; vr_key = "9";
        vr_by_scheme = [ ("alpha", 0.5) ] };
    ]
  in
  let path = Filename.temp_file "vuln" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Turnpike.Csv_export.vuln_table ~path rows;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      match List.rev !lines with
      | [ header; row0; row9 ] ->
        check_str "columns collected across all rows" "benchmark,key,alpha,beta"
          header;
        check_str "full row" "b1,0,1.000000,2.000000" row0;
        check_str "missing scheme cell renders nan" "b1,9,0.500000,nan" row9
      | ls ->
        Alcotest.fail
          (Printf.sprintf "expected 3 csv lines, got %d" (List.length ls)))

(* ------------------------------------------------------------------ *)
(* The explorer's static rung *)

let cheap_budget =
  {
    Turnpike.Explore.label = "proxy";
    scale = 1;
    fuel = 20_000;
    max_faults = 0;
    ci_half_width = 0.25;
  }

let test_explore_static_proxy_tiny () =
  let module X = Turnpike.Explore in
  let benches = [ bench "libquan" ] in
  let r =
    X.run ~benches ~budgets:[ cheap_budget ] ~static_proxy:true
      ~spec:Turnpike.Design_point.tiny_spec ()
  in
  (match r.X.evals_per_budget with
  | ("static", n) :: rest ->
    check_int "static rung scores the whole grid" r.X.grid_size n;
    check "simulated rungs see only the survivors" true
      (List.for_all (fun (_, m) -> m <= (n + 1) / 2) rest)
  | _ -> Alcotest.fail "static rung missing from the ladder");
  check "frontier re-validates bit-exact" true r.X.validated;
  (* pruned points carry their static evaluation *)
  check "pruned points report the static budget" true
    (List.exists
       (fun (p : X.point_result) ->
         p.X.budgets_survived = 0 && p.X.budget = "static")
       r.X.results)

let test_explore_static_proxy_default_grid () =
  (* Acceptance: on the 64-point default grid the static rung must prune
     >= 25% of the points before any simulation, and the frontier found
     with the proxy enabled must re-validate bit-exact at full scale. *)
  let module X = Turnpike.Explore in
  let benches = [ bench "libquan" ] in
  let r =
    X.run ~benches ~budgets:[ cheap_budget ] ~static_proxy:true
      ~spec:Turnpike.Design_point.default_spec ()
  in
  check_int "default grid" 64 r.X.grid_size;
  (match r.X.evals_per_budget with
  | [ ("static", 64); (_, sim) ] ->
    check "at least 25% pruned before any simulation" true
      (float_of_int (64 - sim) >= 0.25 *. 64.0)
  | _ -> Alcotest.fail "expected exactly static + one simulated rung");
  check "frontier re-validates bit-exact at full scale" true r.X.validated

let test_explore_proxy_determinism () =
  let module X = Turnpike.Explore in
  let benches = [ bench "libquan" ] in
  let run () =
    X.run ~benches ~budgets:[ cheap_budget ] ~static_proxy:true
      ~spec:Turnpike.Design_point.tiny_spec ()
  in
  let a = run () and b = run () in
  check "static-proxy explore is reproducible" true
    (List.map (fun (p : X.point_result) -> (Turnpike.Design_point.id p.X.point, p.X.objectives, p.X.budget)) a.X.results
    = List.map (fun (p : X.point_result) -> (Turnpike.Design_point.id p.X.point, p.X.objectives, p.X.budget)) b.X.results)

(* ------------------------------------------------------------------ *)
(* Acceptance: static ranking predicts the dynamic forensics ranking *)

let test_static_predicts_dynamic_regions () =
  (* Over the whole suite at scale 2: CI-stopped campaigns (fixed seed)
     give the dynamic region ranking; the static region ranking must
     agree with Spearman >= 0.6 and top-5 overlap >= 3/5 (clamped to the
     common-key count) on at least 30 of the 36 benchmarks. *)
  let params =
    { Turnpike.Run.default_params with Turnpike.Run.scale = 2; fuel = 2_000_000 }
  in
  let stopping =
    { Verifier.half_width = 0.08; confidence = 0.95; batch = 16; min_faults = 96 }
  in
  let results =
    Turnpike.Parallel.map_list
      (fun b ->
        let c = Turnpike.Run.compile_with params Turnpike.Scheme.turnpike b in
        let compiled = c.Turnpike.Run.compiled in
        let v =
          Vuln.compute
            (Analysis.Context.with_machine ~wcdl:10
               (Pass_pipeline.analysis_context compiled))
        in
        let faults = Injector.campaign ~seed:11 ~count:192 c.Turnpike.Run.trace in
        let plan = Snapshot.record compiled in
        let records, _ci =
          Forensics.campaign_ci ~plan ~stopping ~golden:c.Turnpike.Run.final
            ~compiled faults
        in
        let s = Forensics.summarize records in
        let static_keys =
          List.map (fun (r : Vuln.row) -> r.Vuln.key) v.Vuln.by_region
        in
        let dynamic_keys =
          List.map (fun (r : Forensics.row) -> r.Forensics.key)
            s.Forensics.by_region
        in
        let rho, (hits, denom) =
          Rank.agreement ~k:5 static_keys dynamic_keys
        in
        let ok = rho >= 0.6 && hits >= min 3 denom in
        (Suite.qualified_name b, rho, hits, denom, ok))
      (Suite.all ())
  in
  let passed = List.filter (fun (_, _, _, _, ok) -> ok) results in
  let failed = List.filter (fun (_, _, _, _, ok) -> not ok) results in
  List.iter
    (fun (name, rho, hits, denom, _) ->
      Printf.printf "  static-vs-dynamic miss: %-16s spearman %+.3f overlap %d/%d\n"
        name rho hits denom)
    failed;
  check_int "whole suite measured" 36 (List.length results);
  check
    (Printf.sprintf "static ranking agrees on >= 30/36 benchmarks (got %d)"
       (List.length passed))
    true
    (List.length passed >= 30)

let tests =
  [
    Alcotest.test_case "natural key comparator" `Quick test_key_compare;
    Alcotest.test_case "one tie-break, static and dynamic" `Quick
      test_shared_tie_break;
    Alcotest.test_case "spearman on hand-computed vectors" `Quick
      test_spearman_hand_computed;
    Alcotest.test_case "top-k overlap edge cases" `Quick
      test_top_k_overlap_edges;
    Alcotest.test_case "agreement restricts to common keys" `Quick
      test_agreement_restricts_to_common_keys;
    Alcotest.test_case "compute sanity on a real binary" `Quick
      test_compute_sanity;
    Alcotest.test_case "predicted AVF monotone in WCDL" `Quick
      test_wcdl_raises_escape;
    Alcotest.test_case "registered as the sixth whole check" `Quick
      test_registry_has_vuln;
    Alcotest.test_case "drop-ckpt mutant convicted statically" `Quick
      test_static_mutant_conviction;
    Alcotest.test_case "vuln report identical at any --jobs" `Quick
      test_vuln_report_jobs_invariant;
    Alcotest.test_case "csv writers tolerate missing columns" `Quick
      test_vuln_csv_missing_columns;
    Alcotest.test_case "explore static rung on the tiny grid" `Quick
      test_explore_static_proxy_tiny;
    Alcotest.test_case "explore static rung prunes the default grid" `Slow
      test_explore_static_proxy_default_grid;
    Alcotest.test_case "static-proxy explore is reproducible" `Quick
      test_explore_proxy_determinism;
    Alcotest.test_case "static ranking predicts dynamic forensics" `Slow
      test_static_predicts_dynamic_regions;
  ]
