(* Coverage for API surface not exercised elsewhere: machine presets and
   the sensor-driven constructor, run-driver bookkeeping, CSV export,
   report formatting, prog validation, recovery-expression utilities, and
   assorted edge cases. *)

open Turnpike_ir
module Machine = Turnpike_arch.Machine
module Sensor = Turnpike_arch.Sensor
module BP = Turnpike_arch.Branch_predictor
module Recovery_expr = Turnpike_compiler.Recovery_expr
module Suite = Turnpike_workloads.Suite

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Machine presets *)

let test_machine_presets () =
  check "baseline has verification off" false Machine.baseline.Machine.verification;
  let ts = Machine.turnstile ~wcdl:20 () in
  check "turnstile verifies" true ts.Machine.verification;
  check "turnstile has no clq" true (ts.Machine.clq = None);
  check "turnstile has no coloring" false ts.Machine.coloring;
  let tp = Machine.turnpike ~wcdl:20 () in
  check "turnpike has clq" true (tp.Machine.clq <> None);
  check "turnpike has coloring" true tp.Machine.coloring;
  check_int "with_wcdl" 35 (Machine.with_wcdl tp 35).Machine.wcdl;
  check_int "with_sb" 8 (Machine.with_sb tp 8).Machine.sb_size

let test_machine_of_sensors () =
  let m = Machine.of_sensors (Machine.turnpike ()) ~num_sensors:300 ~clock_ghz:2.5 in
  check_int "300 sensors at 2.5GHz give the paper's 10-cycle WCDL" 10 m.Machine.wcdl;
  let m30 = Machine.of_sensors (Machine.turnpike ()) ~num_sensors:30 ~clock_ghz:2.5 in
  check "fewer sensors, longer window" true (m30.Machine.wcdl > m.Machine.wcdl)

(* ------------------------------------------------------------------ *)
(* Branch predictor unit behaviour *)

let test_predictor_basics () =
  let p = BP.create ~entries:16 () in
  check "initial weakly taken" true (BP.predict p ~pc:3);
  check "first taken correct" true (BP.update p ~pc:3 ~taken:true);
  check "not-taken mispredicts" false (BP.update p ~pc:3 ~taken:false);
  (* Saturate toward not-taken. *)
  ignore (BP.update p ~pc:3 ~taken:false);
  ignore (BP.update p ~pc:3 ~taken:false);
  check "trained to not-taken" false (BP.predict p ~pc:3);
  check_int "lookups counted" 4 (BP.lookups p);
  check "rate in [0,1]" true (BP.mispredict_rate p >= 0.0 && BP.mispredict_rate p <= 1.0)

let test_predictor_aliasing_isolated () =
  let p = BP.create ~entries:4 () in
  (* pcs 1 and 5 alias (mod 4): training one affects the other — but pcs
     1 and 2 do not. *)
  ignore (BP.update p ~pc:1 ~taken:false);
  ignore (BP.update p ~pc:1 ~taken:false);
  check "pc 2 unaffected" true (BP.predict p ~pc:2);
  check "pc 5 aliases pc 1" false (BP.predict p ~pc:5)

let test_predictor_invalid () =
  Alcotest.check_raises "non power of two"
    (Invalid_argument "Branch_predictor.create: entries must be a positive power of two")
    (fun () -> ignore (BP.create ~entries:48 ()))

(* ------------------------------------------------------------------ *)
(* Prog validation *)

let test_prog_validate () =
  let f = Func.create ~name:"v" ~entry:"a" [ Block.create "a" ] in
  let ok = Prog.create ~mem_init:[ (Layout.data_base, 5) ] ~reg_init:[ (3, 7) ] f in
  Alcotest.(check (list string)) "clean program" [] (Prog.validate ok);
  let bad_align = Prog.create ~mem_init:[ (Layout.data_base + 3, 5) ] f in
  check "misaligned image flagged" true (List.length (Prog.validate bad_align) = 1);
  let bad_reg = Prog.create ~reg_init:[ (Reg.zero, 1) ] f in
  check "zero-reg input flagged" true (List.length (Prog.validate bad_reg) = 1);
  Alcotest.(check (list int)) "live-in regs" [ 3 ] (Prog.live_in_regs ok)

(* ------------------------------------------------------------------ *)
(* Recovery expressions *)

let test_expr_utilities () =
  let e =
    Recovery_expr.Select
      ( Recovery_expr.Slot 1,
        Recovery_expr.Op (Instr.Add, Recovery_expr.Slot 2, Recovery_expr.Const 4),
        Recovery_expr.Const 9 )
  in
  Alcotest.(check (list int)) "slots collected" [ 1; 2 ] (Recovery_expr.slots e);
  check_int "depth" 3 (Recovery_expr.depth e);
  check "printable" true (String.length (Recovery_expr.to_string e) > 0);
  let read_slot r = r * 10 in
  check_int "select taken" 24 (Recovery_expr.eval ~read_slot e);
  let e0 = Recovery_expr.Select (Recovery_expr.Const 0, Recovery_expr.Const 1, Recovery_expr.Const 2) in
  check_int "select fallthrough" 2 (Recovery_expr.eval ~read_slot e0)

(* ------------------------------------------------------------------ *)
(* CSV export *)

let test_csv_roundtrip () =
  let path = Filename.temp_file "turnpike_csv" ".csv" in
  Turnpike.Csv_export.write ~path ~header:[ "a"; "b" ] [ [ "1"; "2" ]; [ "3"; "4" ] ];
  let ic = open_in path in
  let lines = List.init 3 (fun _ -> input_line ic) in
  close_in ic;
  Sys.remove path;
  Alcotest.(check (list string)) "contents" [ "a,b"; "1,2"; "3,4" ] lines

let test_csv_experiment_renderers () =
  let dir = Filename.temp_file "turnpike_dir" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let p n = Filename.concat dir n in
  Turnpike.Csv_export.fig18 ~path:(p "f18.csv") (Turnpike.Experiments.fig18 ());
  check "fig18 written" true (Sys.file_exists (p "f18.csv"));
  Turnpike.Csv_export.wcdl_sweep ~path:(p "empty.csv") [];
  check "empty sweep writes nothing" false (Sys.file_exists (p "empty.csv"));
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir

(* ------------------------------------------------------------------ *)
(* Report formatting *)

let test_report_formatting () =
  Alcotest.(check string) "overhead format" "1.234" (Turnpike.Report.fmt_overhead 1.2341);
  Alcotest.(check string) "pct format" "12.50%" (Turnpike.Report.fmt_pct 12.5)

(* ------------------------------------------------------------------ *)
(* Run.params: the single run-configuration record. Runs derived with
   [{ params with ... }] must agree with runs of an identical literal, and
   normalization must be reproducible (cache-independent). *)

let test_run_params_record () =
  let module Run = Turnpike.Run in
  let d = Run.default_params in
  check_int "default scale" Run.default_scale d.Run.scale;
  check_int "default fuel" Run.default_fuel d.Run.fuel;
  check_int "default wcdl" 10 d.Run.wcdl;
  check_int "default sb" 4 d.Run.sb_size;
  check_int "default baseline sb" 4 d.Run.baseline_sb;
  let b = List.hd (Suite.find_by_name "libquan") in
  let p = { d with Run.scale = 1; wcdl = 20 } in
  let r_rec = Run.run_with p Turnpike.Scheme.turnpike b in
  let r_lit =
    Run.run_with
      {
        Run.scale = 1;
        fuel = Run.default_fuel;
        wcdl = 20;
        sb_size = 4;
        baseline_sb = 4;
      }
      Turnpike.Scheme.turnpike b
  in
  check "derived and literal params agree" true (r_rec.Run.stats = r_lit.Run.stats);
  let ov1, _ = Run.normalized_with p Turnpike.Scheme.turnstile b in
  Run.clear_cache ();
  let ov2, _ = Run.normalized_with p Turnpike.Scheme.turnstile b in
  check "normalization reproducible across cache clear" true (ov1 = ov2)

(* ------------------------------------------------------------------ *)
(* Verifier.outcome: the exposed per-fault classification. *)

let test_verifier_outcome_surface () =
  let module Run = Turnpike.Run in
  let module V = Turnpike_resilience.Verifier in
  let module Fault = Turnpike_resilience.Fault in
  let b = List.hd (Suite.find_by_name "libquan") in
  let c = Run.compile_with { Run.default_params with Run.scale = 1 } Turnpike.Scheme.turnpike b in
  let fault = Fault.single_bit ~at_step:500 ~reg:2 ~bit:3 in
  (match V.run_one ~golden:c.Run.final ~compiled:c.Run.compiled fault with
  | V.Recovered { detections; reexec_overhead } ->
    check "recovered run was detected" true (detections <> []);
    check "reexec overhead non-negative" true (reexec_overhead >= 0.0)
  | V.Sdc _ | V.Crashed _ -> Alcotest.fail "expected Recovered");
  let rep = V.reduce [ V.Crashed { reason = "synthetic" } ] in
  check_int "crash counted" 1 rep.V.crashed;
  check "no recovered runs -> 0.0 mean, not nan" true
    (rep.V.mean_reexec_overhead = 0.0)

(* ------------------------------------------------------------------ *)
(* Run-driver bookkeeping *)

let run_libquan () =
  let module Run = Turnpike.Run in
  let b = List.hd (Suite.find_by_name "libquan") in
  Run.run_with
    { Run.default_params with Run.scale = 1; wcdl = 10 }
    Turnpike.Scheme.turnpike b

let test_run_stats_accessors () =
  let r = run_libquan () in
  let s = r.Turnpike.Run.stats in
  let module S = Turnpike_arch.Sim_stats in
  check "ipc positive" true (S.ipc s > 0.0);
  check_int "sb_writes = stores + ckpts" (s.S.stores + s.S.ckpts) (S.sb_writes s);
  check_int "fast = wf + colored" (s.S.war_free_released + s.S.colored_released)
    (S.fast_released s);
  check "ckpt ratio in (0,1)" true (S.ckpt_ratio s > 0.0 && S.ckpt_ratio s < 1.0);
  check "war-free ratio in [0,1]" true (S.war_free_ratio s >= 0.0 && S.war_free_ratio s <= 1.0);
  check "stats printable" true (String.length (S.to_string s) > 0);
  check "static stats printable" true
    (String.length (Turnpike_compiler.Static_stats.to_string r.Turnpike.Run.static_stats) > 0)

let test_sim_stats_json () =
  let r = run_libquan () in
  let j = Turnpike_arch.Sim_stats.to_json r.Turnpike.Run.stats in
  check "starts as object" true (j.[0] = '{' && j.[String.length j - 1] = '}');
  let contains sub =
    let n = String.length sub and m = String.length j in
    let rec go i = i + n <= m && (String.sub j i n = sub || go (i + 1)) in
    go 0
  in
  check "has cycles" true (contains "\"cycles\":");
  check "has complete" true (contains "\"complete\":true")

let test_suite_descriptions_nonempty () =
  List.iter
    (fun b ->
      check (b.Suite.name ^ " described") true (String.length b.Suite.description > 0))
    (Suite.all ())

let tests =
  [
    ("machine presets", `Quick, test_machine_presets);
    ("machine of_sensors", `Quick, test_machine_of_sensors);
    ("branch predictor basics", `Quick, test_predictor_basics);
    ("branch predictor aliasing", `Quick, test_predictor_aliasing_isolated);
    ("branch predictor invalid args", `Quick, test_predictor_invalid);
    ("prog validation", `Quick, test_prog_validate);
    ("recovery expression utilities", `Quick, test_expr_utilities);
    ("csv write roundtrip", `Quick, test_csv_roundtrip);
    ("csv experiment renderers", `Quick, test_csv_experiment_renderers);
    ("report formatting", `Quick, test_report_formatting);
    ("Run.params record form", `Quick, test_run_params_record);
    ("Verifier.outcome surface", `Quick, test_verifier_outcome_surface);
    ("run stats accessors", `Quick, test_run_stats_accessors);
    ("sim stats json", `Quick, test_sim_stats_json);
    ("suite descriptions", `Quick, test_suite_descriptions_nonempty);
  ]
