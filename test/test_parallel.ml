(* Tests for the Parallel work pool and the determinism guarantee of the
   parallel experiment engine: identical figure rows and byte-identical
   CSV output at any job count, with the domain-safe compile/trace cache
   deduplicating work underneath. *)

module Parallel = Turnpike.Parallel
module Run = Turnpike.Run
module Scheme = Turnpike.Scheme
module E = Turnpike.Experiments
module Injector = Turnpike_resilience.Injector
module Verifier = Turnpike_resilience.Verifier

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Pool semantics *)

let test_map_orders_results () =
  let tasks = Array.init 100 (fun i -> i) in
  let expected = Array.map (fun i -> (i * 7) + 1) tasks in
  List.iter
    (fun jobs ->
      let got = Parallel.map ~jobs (fun i -> (i * 7) + 1) tasks in
      check (Printf.sprintf "ordered at jobs=%d" jobs) true (got = expected))
    [ 1; 2; 4; 9 ]

let test_map_empty_and_singleton () =
  check_int "empty" 0 (Array.length (Parallel.map ~jobs:4 succ [||]));
  check "singleton" true (Parallel.map ~jobs:4 succ [| 41 |] = [| 42 |])

let test_map_reraises_lowest_index () =
  let boom i = if i mod 3 = 0 then failwith (string_of_int i) else i in
  List.iter
    (fun jobs ->
      match Parallel.map ~jobs boom (Array.init 20 (fun i -> i + 1)) with
      | _ -> Alcotest.fail "expected an exception"
      | exception Failure msg ->
        (* Tasks 3, 6, 9... fail; the lowest-indexed failure wins at any
           job count. *)
        Alcotest.(check string)
          (Printf.sprintf "first failure at jobs=%d" jobs)
          "3" msg)
    [ 1; 4 ]

let test_grid_regroups_in_order () =
  let rows =
    Parallel.grid ~jobs:4 ~items:[ "a"; "b"; "c" ] ~configs:[ 1; 2 ]
      (fun item c -> Printf.sprintf "%s%d" item c)
  in
  check "grid rows" true
    (rows
    = [ ("a", [ (1, "a1"); (2, "a2") ]); ("b", [ (1, "b1"); (2, "b2") ]);
        ("c", [ (1, "c1"); (2, "c2") ]) ])

let test_default_jobs_setting () =
  let saved = Parallel.effective_jobs () in
  Parallel.set_default_jobs 3;
  check_int "explicit width" 3 (Parallel.effective_jobs ());
  Parallel.set_default_jobs 0;
  check "auto width positive" true (Parallel.effective_jobs () >= 1);
  Parallel.set_default_jobs saved

let test_alias_shares_pool_config () =
  (* Turnpike.Parallel is a re-export of the standalone turnpike.parallel
     library: configuring one configures the other. *)
  let saved = Parallel.effective_jobs () in
  Turnpike_parallel.set_default_jobs 5;
  check_int "alias sees library setting" 5 (Parallel.effective_jobs ());
  Parallel.set_default_jobs saved;
  check_int "library sees alias setting" saved (Turnpike_parallel.effective_jobs ())

let test_nested_map_degrades_sequentially () =
  (* A map issued from inside a worker must not spawn another pool; it
     runs sequentially in that worker and still returns ordered results. *)
  let rows =
    Parallel.map ~jobs:4
      (fun i ->
        Array.to_list (Parallel.map ~jobs:4 (fun j -> (i * 10) + j) [| 0; 1; 2 |]))
      (Array.init 6 (fun i -> i))
  in
  check "nested results ordered" true
    (rows = Array.init 6 (fun i -> [ i * 10; (i * 10) + 1; (i * 10) + 2 ]))

(* ------------------------------------------------------------------ *)
(* The acceptance property: a full-figure sweep produces byte-identical
   CSV rows at --jobs 1 and --jobs 4. *)

let small = { E.default_params with E.scale = 1; fuel = 20_000 }

let sweep_csv ~jobs =
  Run.clear_cache ();
  let saved = Parallel.effective_jobs () in
  Parallel.set_default_jobs jobs;
  let rows = E.fig19 ~params:small () in
  Parallel.set_default_jobs saved;
  let path = Filename.temp_file "turnpike_fig19_" ".csv" in
  Turnpike.Csv_export.wcdl_sweep ~path rows;
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  (rows, contents)

let test_sweep_deterministic_across_jobs () =
  let rows1, csv1 = sweep_csv ~jobs:1 in
  let rows4, csv4 = sweep_csv ~jobs:4 in
  check "structured rows identical" true (rows1 = rows4);
  Alcotest.(check string) "CSV byte-identical at jobs 1 vs 4" csv1 csv4;
  check "header uses wcdl columns" true
    (String.length csv1 > 0
    && String.sub csv1 0 (String.index csv1 '\n') = "benchmark,wcdl10,wcdl20,wcdl30,wcdl40,wcdl50")

let test_parallel_cache_shared () =
  (* Two workers racing on the same compile key get the same physical
     object: the in-flight latch makes the second wait, not recompile. *)
  Run.clear_cache ();
  let bench = List.hd (Turnpike_workloads.Suite.find_by_name "libquan") in
  let results =
    Parallel.map ~jobs:4
      (fun _ ->
        Run.compile_with
          { Run.default_params with Run.scale = 1; fuel = 20_000 }
          Scheme.turnpike bench)
      (Array.init 8 (fun i -> i))
  in
  Array.iter
    (fun c -> check "same cached object" true (c == results.(0)))
    results

(* ------------------------------------------------------------------ *)
(* The campaign acceptance property: Verifier.run_campaign produces an
   identical campaign_report at any job count for a fixed seed — the
   per-fault mirror of the fig19 CSV check above. *)

let campaign_fixture () =
  Run.clear_cache ();
  let bench = List.hd (Turnpike_workloads.Suite.find_by_name "libquan") in
  let c =
    Run.compile_with { Run.default_params with scale = 1 } Scheme.turnpike bench
  in
  let faults = Injector.campaign ~seed:5 ~count:16 c.Run.trace in
  (c, faults)

let test_campaign_report_identical_across_jobs () =
  let c, faults = campaign_fixture () in
  let report jobs =
    Verifier.run_campaign ~jobs ~golden:c.Run.final ~compiled:c.Run.compiled faults
  in
  let r1 = report 1 and r4 = report 4 in
  check "campaign_report identical at jobs 1 vs 4" true (r1 = r4);
  check_int "every fault accounted" 16 r1.Verifier.total;
  check_int "campaign is SDC-free" 0 r1.Verifier.sdc

let test_run_one_reduce_composition () =
  (* run_campaign IS map run_one |> reduce: composing the pieces by hand
     must give the same report. *)
  let c, faults = campaign_fixture () in
  let composed =
    List.map
      (Verifier.run_one ~golden:c.Run.final ~compiled:c.Run.compiled)
      faults
    |> Verifier.reduce
  in
  let whole =
    Verifier.run_campaign ~jobs:2 ~golden:c.Run.final ~compiled:c.Run.compiled
      faults
  in
  check "composition equals run_campaign" true (composed = whole)

let test_reduce_empty_campaign () =
  (* No outcomes: every counter zero and the overhead mean guarded to 0.0
     (not a NaN from 0/0). *)
  let rep = Verifier.reduce [] in
  check_int "empty total" 0 rep.Verifier.total;
  check "mean overhead is 0.0, not nan" true
    (rep.Verifier.mean_reexec_overhead = 0.0)

(* ------------------------------------------------------------------ *)
(* CSV robustness: a later row missing a scheme must not raise. *)

let test_ladder_csv_tolerates_missing_scheme () =
  let rows =
    [ { E.bench = "a"; by_scheme = [ ("turnstile", 1.3); ("turnpike", 1.0) ] };
      { E.bench = "b"; by_scheme = [ ("turnstile", 1.2) ] } ]
  in
  let path = Filename.temp_file "turnpike_ladder_" ".csv" in
  Turnpike.Csv_export.ladder ~path rows;
  let ic = open_in path in
  let lines = List.init 3 (fun _ -> input_line ic) in
  close_in ic;
  Sys.remove path;
  check "ladder rows" true
    (lines
    = [ "benchmark,turnstile,turnpike"; "a,1.300000,1.000000"; "b,1.200000,nan" ])

let tests =
  [
    ("map delivers results in task order", `Quick, test_map_orders_results);
    ("map on empty/singleton inputs", `Quick, test_map_empty_and_singleton);
    ("map re-raises lowest-index failure", `Quick, test_map_reraises_lowest_index);
    ("grid regroups per item in order", `Quick, test_grid_regroups_in_order);
    ("default jobs setting", `Quick, test_default_jobs_setting);
    ("Turnpike.Parallel aliases turnpike.parallel", `Quick, test_alias_shares_pool_config);
    ("nested map degrades to sequential", `Quick, test_nested_map_degrades_sequentially);
    ("fig19 sweep byte-identical at jobs 1 vs 4", `Slow, test_sweep_deterministic_across_jobs);
    ("campaign report identical at jobs 1 vs 4", `Slow, test_campaign_report_identical_across_jobs);
    ("run_one |> reduce composes to run_campaign", `Quick, test_run_one_reduce_composition);
    ("reduce of empty campaign", `Quick, test_reduce_empty_campaign);
    ("racing workers share one compile", `Quick, test_parallel_cache_shared);
    ("ladder CSV tolerates missing scheme", `Quick, test_ladder_csv_tolerates_missing_scheme);
  ]
