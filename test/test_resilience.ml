(* Tests for the resilience engine: fault model, injector, the
   region-transactional recovery executor and the SDC verifier — including
   the paper's negative result (Fig 16: checkpoint fast release without
   coloring is unsound). *)

open Turnpike_ir
module Recovery = Turnpike_resilience.Recovery
module Fault = Turnpike_resilience.Fault
module Injector = Turnpike_resilience.Injector
module Verifier = Turnpike_resilience.Verifier
module Snapshot = Turnpike_resilience.Snapshot
module Pass_pipeline = Turnpike_compiler.Pass_pipeline
module Suite = Turnpike_workloads.Suite

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let bench name = List.hd (Suite.find_by_name name)

let small_params =
  { Turnpike.Run.default_params with Turnpike.Run.scale = 1; fuel = 400_000 }

let compiled_of name =
  Turnpike.Run.compile_with small_params Turnpike.Scheme.turnpike (bench name)

(* ------------------------------------------------------------------ *)
(* Fault model *)

let test_fault_validation () =
  Alcotest.check_raises "zero reg immune"
    (Invalid_argument "Fault.create: the zero register is immune") (fun () ->
      ignore (Fault.create ~at_step:1 ~reg:Reg.zero ~xor_mask:1));
  Alcotest.check_raises "empty mask"
    (Invalid_argument "Fault.create: empty mask") (fun () ->
      ignore (Fault.create ~at_step:1 ~reg:3 ~xor_mask:0));
  Alcotest.check_raises "negative step"
    (Invalid_argument "Fault.create: negative step") (fun () ->
      ignore (Fault.create ~at_step:(-1) ~reg:3 ~xor_mask:1));
  let f = Fault.single_bit ~at_step:5 ~reg:3 ~bit:4 in
  check_int "single bit mask" 16 f.Fault.xor_mask

let test_injector_campaign_targets () =
  let c = compiled_of "libquan" in
  let faults = Injector.campaign ~seed:1 ~count:10 c.Turnpike.Run.trace in
  check_int "requested count" 10 (List.length faults);
  List.iter
    (fun (f : Fault.t) ->
      check "positive step" true (f.Fault.at_step > 0);
      check "never zero reg" false (Reg.is_zero f.Fault.reg))
    faults;
  (* Deterministic in seed. *)
  let again = Injector.campaign ~seed:1 ~count:10 c.Turnpike.Run.trace in
  check "deterministic" true (List.for_all2 Fault.equal faults again)

let test_injector_no_duplicate_faults () =
  (* Regression: the site and bit draws come from correlated [mix seed _]
     streams, so the raw stream repeats (step, reg, bit) triples; the
     campaign must deduplicate while preserving seeded order and still
     deliver the requested count when the trace is big enough. *)
  let c = compiled_of "libquan" in
  List.iter
    (fun seed ->
      let faults = Injector.campaign ~seed ~count:200 c.Turnpike.Run.trace in
      check_int
        (Printf.sprintf "seed %d full count" seed)
        200 (List.length faults);
      let seen = Hashtbl.create 256 in
      List.iter
        (fun (f : Fault.t) ->
          let key = (f.Fault.at_step, f.Fault.reg, f.Fault.xor_mask) in
          check
            (Printf.sprintf "seed %d distinct (%d,%d,%d)" seed f.Fault.at_step
               f.Fault.reg f.Fault.xor_mask)
            false (Hashtbl.mem seen key);
          Hashtbl.replace seen key ())
        faults)
    [ 1; 7; 42; 1234 ];
  (* A request beyond the trace's distinct site/bit space tops up to
     exactly that space, never past it and never with repeats. *)
  let tiny =
    let b = Builder.create "tiny" in
    Builder.label b "entry";
    let r = Builder.fresh_reg b in
    Builder.mov b ~dst:r (Imm 3);
    Builder.add b ~dst:r ~a:r (Imm 1);
    Builder.ret b;
    Builder.finish b
  in
  let opts = Turnpike.Scheme.compile_opts Turnpike.Scheme.turnpike ~sb_size:4 in
  let compiled = Pass_pipeline.compile ~opts tiny in
  let trace, _ = Interp.trace_run compiled.Pass_pipeline.prog in
  let faults = Injector.campaign ~seed:3 ~count:10_000 trace in
  let distinct =
    let t = Hashtbl.create 64 in
    List.iter
      (fun (f : Fault.t) ->
        Hashtbl.replace t (f.Fault.at_step, f.Fault.reg, f.Fault.xor_mask) ())
      faults;
    Hashtbl.length t
  in
  check_int "tiny trace: all distinct" (List.length faults) distinct;
  check "tiny trace: site space exhausted, not exceeded" true
    (List.length faults < 10_000 && List.length faults > 0)

(* ------------------------------------------------------------------ *)
(* Recovery executor *)

let test_no_fault_matches_golden () =
  List.iter
    (fun name ->
      let c = compiled_of name in
      let out = Recovery.run c.Turnpike.Run.compiled in
      check (name ^ " matches") true
        (Verifier.compare_states ~golden:c.Turnpike.Run.final
           ~actual:out.Recovery.state
        = Verifier.Match);
      check_int (name ^ " no recoveries") 0 out.Recovery.recoveries)
    [ "libquan"; "mcf"; "gcc"; "radix" ]

let test_no_fault_turnstile_config () =
  let c = compiled_of "libquan" in
  let out = Recovery.run ~config:Recovery.turnstile_config c.Turnpike.Run.compiled in
  check "turnstile config matches" true
    (Verifier.compare_states ~golden:c.Turnpike.Run.final ~actual:out.Recovery.state
    = Verifier.Match);
  check_int "nothing colored without coloring" 0 out.Recovery.colored_ckpts;
  check_int "nothing fast released without CLQ" 0 out.Recovery.fast_released_stores;
  check "everything quarantined" true (out.Recovery.quarantined_writes > 0)

let test_single_fault_recovers () =
  let c = compiled_of "libquan" in
  let fault = Fault.single_bit ~at_step:500 ~reg:2 ~bit:3 in
  let out = Recovery.run ~fault c.Turnpike.Run.compiled in
  check "recovered" true
    (Verifier.compare_states ~golden:c.Turnpike.Run.final ~actual:out.Recovery.state
    = Verifier.Match);
  check "at least one recovery" true (out.Recovery.recoveries >= 1);
  check_int "one detection" 1 (List.length out.Recovery.detections)

let test_fault_campaigns_sdc_free () =
  (* The headline property: across benchmarks and fault sites, Turnpike
     never silently corrupts output. *)
  List.iter
    (fun name ->
      let c = compiled_of name in
      let faults = Injector.campaign ~seed:11 ~count:12 c.Turnpike.Run.trace in
      let rep =
        Verifier.run_campaign ~golden:c.Turnpike.Run.final
          ~compiled:c.Turnpike.Run.compiled faults
      in
      check_int (name ^ " zero SDC") 0 rep.Verifier.sdc;
      check_int (name ^ " zero crashes") 0 rep.Verifier.crashed;
      check_int (name ^ " all recovered") rep.Verifier.total rep.Verifier.recovered)
    [ "libquan"; "mcf"; "bzip2"; "cactubssn"; "radix"; "hmmer"; "astar"; "gobmk" ]

let test_fault_campaign_turnstile_config () =
  (* The recovery protocol is also sound without any fast release. *)
  let c =
    Turnpike.Run.compile_with small_params Turnpike.Scheme.turnstile (bench "libquan")
  in
  let faults = Injector.campaign ~seed:4 ~count:10 c.Turnpike.Run.trace in
  let rep =
    Verifier.run_campaign ~config:Recovery.turnstile_config
      ~golden:c.Turnpike.Run.final ~compiled:c.Turnpike.Run.compiled faults
  in
  check_int "turnstile zero SDC" 0 rep.Verifier.sdc;
  check_int "turnstile zero crashes" 0 rep.Verifier.crashed

let test_parity_detection_on_address_taint () =
  (* Corrupting a register that is then used as a load base triggers the
     parity/AGU path: detection at the addressing use, before memory is
     touched. Build the pattern explicitly so the strike deterministically
     lands on the pointer. *)
  let b = Builder.create "ptr" in
  Builder.label b "entry";
  let data = Builder.alloc_array b ~len:32 ~init:(fun k -> k * 3) in
  let out = Builder.alloc_array b ~len:1 ~init:(fun _ -> 0) in
  let p = Builder.fresh_reg b and ob = Builder.fresh_reg b in
  Builder.mov b ~dst:p (Imm data);
  Builder.mov b ~dst:ob (Imm out);
  let i = Builder.fresh_reg b and acc = Builder.fresh_reg b in
  Builder.mov b ~dst:i (Imm 0);
  Builder.mov b ~dst:acc (Imm 0);
  Builder.jump b "loop";
  Builder.label b "loop";
  let v = Builder.fresh_reg b in
  Builder.load b ~dst:v ~base:p ();
  Builder.add b ~dst:acc ~a:acc (Reg v);
  Builder.add b ~dst:p ~a:p (Imm Layout.word);
  Builder.add b ~dst:i ~a:i (Imm 1);
  let c = Builder.fresh_reg b in
  Builder.cmp b Instr.Lt ~dst:c ~a:i (Imm 30);
  Builder.branch b ~cond:c ~if_true:"loop" ~if_false:"fin";
  Builder.label b "fin";
  Builder.store b ~src:acc ~base:ob ();
  Builder.ret b;
  let prog = Builder.finish b in
  let opts = Turnpike.Scheme.compile_opts Turnpike.Scheme.turnpike ~sb_size:4 in
  let compiled = Pass_pipeline.compile ~opts prog in
  let trace, golden = Interp.trace_run compiled.Pass_pipeline.prog in
  ignore trace;
  (* Find the physical register used as the loop's load base and strike it
     mid-loop: the very next load must trigger parity detection. *)
  let base_reg =
    let found = ref None in
    Turnpike_ir.Func.iter_blocks
      (fun blk ->
        Array.iter
          (fun ins ->
            match ins with
            | Instr.Load (_, base, _, Instr.App_mem) when !found = None ->
              found := Some base
            | _ -> ())
          blk.Block.body)
      compiled.Pass_pipeline.prog.Prog.func;
    Option.get !found
  in
  let fault = Fault.single_bit ~at_step:60 ~reg:base_reg ~bit:1 in
  let out = Recovery.run ~fault compiled in
  check "parity detection fired" true (List.mem Recovery.Parity out.Recovery.detections);
  check "recovered" true
    (Verifier.compare_states ~golden ~actual:out.Recovery.state = Verifier.Match)

let test_unsafe_ckpt_release_reproduces_fig16 () =
  (* Releasing checkpoints without coloring overwrites the verified
     checkpoint storage; some fault in the campaign must then corrupt the
     output or fail recovery — the corner case of paper Fig 16 that
     motivates hardware coloring. *)
  let c = compiled_of "libquan" in
  let config = { Recovery.default_config with Recovery.coloring = false; unsafe_ckpt_release = true } in
  let faults = Injector.campaign ~seed:2 ~count:40 c.Turnpike.Run.trace in
  let rep =
    Verifier.run_campaign ~config ~golden:c.Turnpike.Run.final
      ~compiled:c.Turnpike.Run.compiled faults
  in
  check "unsafe release corrupts at least one run" true
    (rep.Verifier.sdc + rep.Verifier.crashed > 0)

let test_detection_near_program_end () =
  (* A fault on the very last steps is still detected (the sensors keep
     watching through the final verification windows). *)
  let c = compiled_of "libquan" in
  let len = Array.length c.Turnpike.Run.trace.Trace.events in
  let fault = Fault.single_bit ~at_step:(len - 3) ~reg:1 ~bit:2 in
  let out = Recovery.run ~fault c.Turnpike.Run.compiled in
  check_int "detected after halt" 1 (List.length out.Recovery.detections);
  check "still matches" true
    (Verifier.compare_states ~golden:c.Turnpike.Run.final ~actual:out.Recovery.state
    = Verifier.Match)

let test_fault_on_dead_register_harmless () =
  let c = compiled_of "libquan" in
  (* Register 30 is a spill scratch; at most steps it is dead. *)
  let fault = Fault.single_bit ~at_step:100 ~reg:30 ~bit:7 in
  let out = Recovery.run ~fault c.Turnpike.Run.compiled in
  check "output intact" true
    (Verifier.compare_states ~golden:c.Turnpike.Run.final ~actual:out.Recovery.state
    = Verifier.Match)

let test_multi_fault_recovery () =
  (* Several well-separated strikes in one run: each is detected and
     recovered independently, and the output stays bit-exact. *)
  let c = compiled_of "libquan" in
  let len = Array.length c.Turnpike.Run.trace.Trace.events in
  let faults =
    List.filteri
      (fun i _ -> i < 3)
      [ Fault.single_bit ~at_step:(len / 5) ~reg:2 ~bit:4;
        Fault.single_bit ~at_step:(2 * len / 5) ~reg:3 ~bit:9;
        Fault.single_bit ~at_step:(4 * len / 5) ~reg:1 ~bit:1 ]
  in
  let out = Recovery.run ~faults c.Turnpike.Run.compiled in
  check "three detections" true (List.length out.Recovery.detections >= 3);
  check "multi-fault run matches golden" true
    (Verifier.compare_states ~golden:c.Turnpike.Run.final ~actual:out.Recovery.state
    = Verifier.Match)

let test_verifier_mismatch_reporting () =
  let c = compiled_of "libquan" in
  let golden = c.Turnpike.Run.final in
  let actual = Interp.init c.Turnpike.Run.compiled.Pass_pipeline.prog in
  (* Uninitialized run diverges from the golden final state. *)
  match Verifier.compare_states ~golden ~actual with
  | Verifier.Mismatch _ -> ()
  | Verifier.Match -> Alcotest.fail "expected mismatch"

let test_verifier_reports_lowest_address_mismatch () =
  (* With several corrupted words, the report must name the lowest address
     — not whichever Hashtbl iteration happens to visit first. *)
  let f = Func.create ~name:"cmp" ~entry:"a" [ Block.create "a" ] in
  let prog = Prog.create f in
  let golden = Interp.init prog and actual = Interp.init prog in
  let addr k = Layout.data_base + (k * Layout.word) in
  Interp.set_mem golden (addr 9) 1;
  Interp.set_mem actual (addr 9) 6;
  Interp.set_mem golden (addr 2) 5;
  (* addr 2 differs (5 vs 0) and addr 9 differs (1 vs 6). *)
  (match Verifier.compare_states ~golden ~actual with
  | Verifier.Mismatch { addr = a; golden = g; actual = v } ->
    check_int "lowest address reported" (addr 2) a;
    check_int "golden value" 5 g;
    check_int "actual value" 0 v
  | Verifier.Match -> Alcotest.fail "expected mismatch");
  (* Symmetric: the extra word on the ACTUAL side at a lower address. *)
  Interp.set_mem actual (addr 1) 3;
  match Verifier.compare_states ~golden ~actual with
  | Verifier.Mismatch { addr = a; golden = g; actual = v } ->
    check_int "actual-side extra word wins" (addr 1) a;
    check_int "golden side is 0" 0 g;
    check_int "actual side is 3" 3 v
  | Verifier.Match -> Alcotest.fail "expected mismatch"

(* ------------------------------------------------------------------ *)
(* Exit drain, fuel-exhaustion triage, snapshot forking, CI stopping *)

let test_exit_drain_commits_fallback_ckpts () =
  (* At exit every closed-but-unverified region must be drained: under the
     turnstile config every checkpoint is a quarantined fallback whose
     value only reaches the architected (color-0) slot at verification, so
     checkpoints executed within the last verify window of the program are
     observable in memory ONLY if the exit drain runs. The plain
     interpreter writes the color-0 slot at every Ckpt directly — with no
     faults the drained executor must agree on the whole memory,
     checkpoint storage included. *)
  List.iter
    (fun name ->
      let c =
        Turnpike.Run.compile_with small_params Turnpike.Scheme.turnstile
          (bench name)
      in
      let compiled = c.Turnpike.Run.compiled in
      let plain = Interp.run compiled.Pass_pipeline.prog in
      let out = Recovery.run ~config:Recovery.turnstile_config compiled in
      check (name ^ " drained executor memory = plain interpreter") true
        (Interp.mem_equal plain out.Recovery.state))
    [ "libquan"; "radix" ]

let test_fuel_exhaustion_reason_has_triage_fields () =
  (* Satellite: a bare "out of fuel" cannot distinguish recovery livelock
     from a wedged program; the reason must carry the recovery count and
     the exhaustion step. *)
  let c = compiled_of "libquan" in
  let config = { Recovery.default_config with Recovery.fuel = 500 } in
  let fault = Fault.single_bit ~at_step:100 ~reg:3 ~bit:5 in
  match
    Verifier.run_one ~config ~golden:c.Turnpike.Run.final
      ~compiled:c.Turnpike.Run.compiled fault
  with
  | Verifier.Crashed { reason } ->
    let contains s sub =
      let n = String.length sub in
      let rec go i =
        i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
      in
      go 0
    in
    (* budget = fuel - steps is a loop invariant, so exhaustion is at
       exactly [fuel] steps here. *)
    check "reason names the exhaustion step" true
      (contains reason "out of fuel at step 500");
    check "reason names the recovery count" true (contains reason "recoveries")
  | Verifier.Recovered _ | Verifier.Sdc _ ->
    Alcotest.fail "expected fuel exhaustion"

let test_snapshot_fork_byte_identical () =
  (* Tentpole differential: for every fault of a seeded campaign, the
     forked-from-snapshot outcome must be byte-identical to the
     from-scratch [run_one] — and campaign reports must agree at any job
     count. *)
  let c = compiled_of "libquan" in
  let compiled = c.Turnpike.Run.compiled in
  let golden = c.Turnpike.Run.final in
  let faults = Injector.campaign ~seed:9 ~count:24 c.Turnpike.Run.trace in
  let plan = Snapshot.record ~every:256 compiled in
  check "pilot run is fault-free sound" true
    (Verifier.compare_states ~golden
       ~actual:(Snapshot.pilot_outcome plan).Recovery.state
    = Verifier.Match);
  List.iteri
    (fun i fault ->
      let scratch = Verifier.run_one ~golden ~compiled fault in
      let forked = Verifier.run_one ~plan ~golden ~compiled fault in
      check (Printf.sprintf "fault %d fork = scratch" i) true (scratch = forked))
    faults;
  let scratch_1 = Verifier.run_campaign ~jobs:1 ~golden ~compiled faults in
  let forked_1 = Verifier.run_campaign ~jobs:1 ~plan ~golden ~compiled faults in
  let forked_4 = Verifier.run_campaign ~jobs:4 ~plan ~golden ~compiled faults in
  check "campaign report fork = scratch (jobs 1)" true (scratch_1 = forked_1);
  check "campaign report identical at jobs 1 and 4" true (forked_1 = forked_4)

let test_snapshot_fork_forensic_parity () =
  (* The forensic lifecycle must not observe the replay strategy: a fault
     forked from a pilot snapshot emits exactly the same event bytes as
     the same fault replayed from step 0. (No forensic event fires before
     the strike, and the fork point always precedes it, so the streams
     are identical in full, not merely as suffixes.) *)
  let module Telemetry = Turnpike_telemetry in
  let c = compiled_of "libquan" in
  let compiled = c.Turnpike.Run.compiled in
  let golden = c.Turnpike.Run.final in
  let faults = Injector.campaign ~seed:9 ~count:24 c.Turnpike.Run.trace in
  let plan = Snapshot.record ~every:256 compiled in
  let landed = ref 0 in
  List.iteri
    (fun i fault ->
      let s_sink = Telemetry.create ~task:i () in
      let f_sink = Telemetry.create ~task:i () in
      let scratch = Verifier.run_one ~tel:s_sink ~golden ~compiled fault in
      let forked = Verifier.run_one ~tel:f_sink ~plan ~golden ~compiled fault in
      check (Printf.sprintf "fault %d outcome fork = scratch" i) true
        (scratch = forked);
      Alcotest.(check string)
        (Printf.sprintf "fault %d forensic bytes fork = scratch" i)
        (Telemetry.Export.jsonl (Telemetry.events s_sink))
        (Telemetry.Export.jsonl (Telemetry.events f_sink));
      if
        List.exists
          (fun (e : Telemetry.event) -> e.Telemetry.name = "strike")
          (Telemetry.events s_sink)
      then incr landed)
    faults;
  check "campaign exercises landed strikes" true (!landed > 0)

let test_snapshot_fork_byte_identical_unsound_config () =
  (* The differential must also hold when outcomes are NOT all recoveries:
     the Fig-16 unsafe-release config yields SDCs and recovery failures,
     and forks must reproduce those byte-for-byte too. *)
  let c = compiled_of "libquan" in
  let compiled = c.Turnpike.Run.compiled in
  let golden = c.Turnpike.Run.final in
  let config =
    {
      Recovery.default_config with
      Recovery.coloring = false;
      unsafe_ckpt_release = true;
    }
  in
  let faults = Injector.campaign ~seed:2 ~count:40 c.Turnpike.Run.trace in
  let plan = Snapshot.record ~config ~every:256 compiled in
  let interesting = ref 0 in
  List.iteri
    (fun i fault ->
      let scratch = Verifier.run_one ~config ~golden ~compiled fault in
      let forked = Verifier.run_one ~config ~plan ~golden ~compiled fault in
      (match scratch with
      | Verifier.Sdc _ | Verifier.Crashed _ -> incr interesting
      | Verifier.Recovered _ -> ());
      check
        (Printf.sprintf "unsound fault %d fork = scratch" i)
        true (scratch = forked))
    faults;
  check "campaign exercises non-recovered outcomes" true (!interesting > 0)

let test_ci_stopping_deterministic () =
  (* Same seed and CI target must give the identical stopping point and
     report at any job count; a zero-SDC campaign stops once the Wilson
     interval on 0/n is narrow enough. *)
  let c = compiled_of "libquan" in
  let compiled = c.Turnpike.Run.compiled in
  let golden = c.Turnpike.Run.final in
  let faults = Injector.campaign ~seed:5 ~count:400 c.Turnpike.Run.trace in
  let plan = Snapshot.record compiled in
  let stopping =
    { Verifier.half_width = 0.05; confidence = 0.95; batch = 16; min_faults = 32 }
  in
  let a = Verifier.run_campaign_ci ~jobs:1 ~plan ~stopping ~golden ~compiled faults in
  let b = Verifier.run_campaign_ci ~jobs:4 ~plan ~stopping ~golden ~compiled faults in
  check "ci report identical at jobs 1 and 4" true (a = b);
  check "stopped before exhausting the supply" false a.Verifier.exhausted;
  check "interval reached the target" true
    (a.Verifier.achieved_half_width <= stopping.Verifier.half_width);
  check_int "consumed a whole number of batches"
    (a.Verifier.batches * stopping.Verifier.batch)
    a.Verifier.report.Verifier.total;
  check "zero SDC rate" true (a.Verifier.sdc_rate = 0.0);
  check "interval covers the rate" true
    (a.Verifier.ci_low <= a.Verifier.sdc_rate
    && a.Verifier.sdc_rate <= a.Verifier.ci_high);
  (* Wilson sanity at zero positives: the lower bound is 0 and the upper
     bound is strictly positive. *)
  check "lower bound 0" true (a.Verifier.ci_low = 0.0);
  check "upper bound positive" true (a.Verifier.ci_high > 0.0)

(* ------------------------------------------------------------------ *)
(* QCheck: randomized single faults always recover. *)

let prop_random_faults_recover =
  QCheck.Test.make ~name:"random single-bit faults recover (libquan)" ~count:25
    QCheck.(pair (int_range 10 4000) (int_range 0 40))
    (fun (step, bit) ->
      let c = compiled_of "libquan" in
      let reg = 1 + (step mod 6) in
      let fault = Fault.single_bit ~at_step:step ~reg ~bit in
      let out = Recovery.run ~fault c.Turnpike.Run.compiled in
      Verifier.compare_states ~golden:c.Turnpike.Run.final ~actual:out.Recovery.state
      = Verifier.Match)

let prop_random_faults_recover_histogram =
  QCheck.Test.make ~name:"random single-bit faults recover (radix)" ~count:15
    QCheck.(pair (int_range 10 3000) (int_range 0 40))
    (fun (step, bit) ->
      let c = compiled_of "radix" in
      let reg = 1 + (step mod 8) in
      let fault = Fault.single_bit ~at_step:step ~reg ~bit in
      let out = Recovery.run ~fault c.Turnpike.Run.compiled in
      Verifier.compare_states ~golden:c.Turnpike.Run.final ~actual:out.Recovery.state
      = Verifier.Match)

let prop_executor_matches_interp_no_fault =
  (* With no faults injected, the region-transactional executor (with all
     of quarantine, CLQ fast release and coloring active) must be
     observationally identical to the plain interpreter over random
     kernels. *)
  QCheck.Test.make ~name:"no-fault executor = interpreter (random kernels)" ~count:15
    QCheck.(triple (int_range 1 40) (int_range 8 50) (int_range 1 3))
    (fun (seed, iters, ways) ->
      let prog = Turnpike_workloads.Templates.stream_store ~seed ~iters ~ways () in
      let opts = Turnpike.Scheme.compile_opts Turnpike.Scheme.turnpike ~sb_size:4 in
      let compiled = Turnpike_compiler.Pass_pipeline.compile ~opts prog in
      let golden = Interp.run ~fuel:2_000_000 compiled.Pass_pipeline.prog in
      let out = Recovery.run compiled in
      Verifier.compare_states ~golden ~actual:out.Recovery.state = Verifier.Match)

let qcheck =
  List.map QCheck_alcotest.to_alcotest
    [ prop_random_faults_recover; prop_random_faults_recover_histogram;
      prop_executor_matches_interp_no_fault ]

let tests =
  [
    ("fault validation", `Quick, test_fault_validation);
    ("injector campaign targets", `Quick, test_injector_campaign_targets);
    ("injector emits no duplicate faults", `Quick, test_injector_no_duplicate_faults);
    ("exit drain commits fallback ckpts", `Quick, test_exit_drain_commits_fallback_ckpts);
    ( "fuel exhaustion reason has triage fields",
      `Quick,
      test_fuel_exhaustion_reason_has_triage_fields );
    ("snapshot fork byte-identical", `Slow, test_snapshot_fork_byte_identical);
    ("snapshot fork forensic parity", `Slow, test_snapshot_fork_forensic_parity);
    ( "snapshot fork byte-identical (unsound config)",
      `Slow,
      test_snapshot_fork_byte_identical_unsound_config );
    ("CI stopping deterministic", `Slow, test_ci_stopping_deterministic);
    ("no-fault matches golden", `Quick, test_no_fault_matches_golden);
    ("no-fault turnstile config", `Quick, test_no_fault_turnstile_config);
    ("single fault recovers", `Quick, test_single_fault_recovers);
    ("fault campaigns SDC-free", `Slow, test_fault_campaigns_sdc_free);
    ("turnstile-config campaign SDC-free", `Quick, test_fault_campaign_turnstile_config);
    ("parity detection on address taint", `Quick, test_parity_detection_on_address_taint);
    ("unsafe release reproduces Fig 16", `Quick, test_unsafe_ckpt_release_reproduces_fig16);
    ("detection near program end", `Quick, test_detection_near_program_end);
    ("fault on dead register harmless", `Quick, test_fault_on_dead_register_harmless);
    ("multi-fault recovery", `Quick, test_multi_fault_recovery);
    ("verifier mismatch reporting", `Quick, test_verifier_mismatch_reporting);
    ( "verifier reports lowest-address mismatch",
      `Quick,
      test_verifier_reports_lowest_address_mismatch );
  ]
  @ qcheck
